"""Tests for the ruling set algorithms (Theorems 2 and 3)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.algorithms.ruling_set import DeterministicRulingSet, RandomizedTwoTwoRulingSet
from repro.core import problems
from repro.core.experiment import run_trials
from repro.core.metrics import node_averaged_complexity

GRAPH_NAMES = ["cycle", "path", "star", "grid", "gnp", "regular4", "tree", "two_triangles", "isolated"]


class TestRandomizedTwoTwoRulingSet:
    @pytest.mark.parametrize("graph_name", GRAPH_NAMES)
    def test_valid_on_graph_zoo(self, graph_name, small_graphs, runner, network_factory):
        net = network_factory(small_graphs[graph_name], seed=1)
        trace = runner.run(RandomizedTwoTwoRulingSet(), net, problems.ruling_set(2, 2), seed=5)
        assert trace.validate(), trace.validate().reason

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5])
    def test_valid_across_seeds(self, seed, runner, network_factory):
        net = network_factory(nx.gnp_random_graph(60, 0.1, seed=9), seed=2)
        trace = runner.run(RandomizedTwoTwoRulingSet(), net, problems.ruling_set(2, 2), seed=seed)
        assert trace.validate()

    def test_output_is_independent_set(self, runner, network_factory):
        net = network_factory(nx.random_regular_graph(6, 50, seed=3), seed=3)
        trace = runner.run(RandomizedTwoTwoRulingSet(), net, problems.ruling_set(2, 2), seed=1)
        selected = set(trace.selected_nodes())
        for u, v in net.edges:
            assert not (u in selected and v in selected)

    def test_theorem2_flat_node_average_as_degree_grows(self, runner, network_factory):
        """Theorem 2: the node-averaged complexity stays O(1) as Δ grows."""
        averages = []
        for degree in (4, 8, 16):
            net = network_factory(nx.random_regular_graph(degree, 60, seed=4), seed=4)
            traces = run_trials(
                RandomizedTwoTwoRulingSet, net, problems.ruling_set(2, 2),
                trials=3, seed=0, runner=runner,
            )
            averages.append(node_averaged_complexity(traces))
        # All values stay within a small constant band (no growth with Δ).
        assert max(averages) <= 14.0
        assert max(averages) <= 2.5 * min(averages) + 2.0

    def test_node_average_small_on_complete_graph(self, runner, network_factory):
        net = network_factory(nx.complete_graph(40), seed=5)
        traces = run_trials(
            RandomizedTwoTwoRulingSet, net, problems.ruling_set(2, 2),
            trials=3, seed=0, runner=runner,
        )
        assert node_averaged_complexity(traces) <= 10.0


class TestDeterministicRulingSet:
    @pytest.mark.parametrize("graph_name", GRAPH_NAMES)
    def test_valid_on_graph_zoo(self, graph_name, small_graphs, runner, network_factory):
        net = network_factory(small_graphs[graph_name], seed=6)
        algorithm = DeterministicRulingSet.for_network(net)
        problem = problems.ruling_set(2, algorithm.coverage_radius)
        trace = runner.run(algorithm, net, problem, seed=0)
        assert trace.validate(), trace.validate().reason

    @pytest.mark.parametrize("variant", ["log-delta", "log-log-n"])
    def test_both_variants_valid(self, variant, runner, network_factory):
        net = network_factory(nx.gnp_random_graph(70, 0.1, seed=10), seed=7)
        algorithm = DeterministicRulingSet.for_network(net, variant=variant)
        problem = problems.ruling_set(2, algorithm.coverage_radius)
        trace = runner.run(algorithm, net, problem, seed=0)
        assert trace.validate()

    def test_is_deterministic(self, runner, network_factory):
        net = network_factory(nx.gnp_random_graph(40, 0.15, seed=11), seed=8)
        algorithm_factory = lambda: DeterministicRulingSet.for_network(net)
        a = runner.run(algorithm_factory(), net, problems.ruling_set(2, algorithm_factory().coverage_radius), seed=0)
        b = runner.run(algorithm_factory(), net, problems.ruling_set(2, algorithm_factory().coverage_radius), seed=77)
        assert a.node_outputs == b.node_outputs

    def test_coverage_radius_scales_with_iterations(self):
        assert DeterministicRulingSet(max_iterations=3, id_bits=8).coverage_radius == 4
        assert DeterministicRulingSet(max_iterations=7, id_bits=8).coverage_radius == 8

    def test_log_delta_variant_iteration_budget(self, network_factory):
        net = network_factory(nx.random_regular_graph(16, 40, seed=12), seed=9)
        algorithm = DeterministicRulingSet.for_network(net, variant="log-delta")
        assert algorithm.max_iterations <= 6  # ceil(log2(17)) = 5

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            DeterministicRulingSet(max_iterations=-1, id_bits=8)
        with pytest.raises(ValueError):
            DeterministicRulingSet(max_iterations=2, id_bits=0)

    def test_unknown_variant_rejected(self, network_factory):
        net = network_factory(nx.path_graph(5))
        with pytest.raises(ValueError):
            DeterministicRulingSet.for_network(net, variant="nope")

    def test_adversarial_identifiers_still_valid(self, runner):
        from repro.local.network import Network

        net = Network.from_graph(nx.gnp_random_graph(40, 0.12, seed=13), id_scheme="adversarial")
        algorithm = DeterministicRulingSet.for_network(net)
        problem = problems.ruling_set(2, algorithm.coverage_radius)
        trace = runner.run(algorithm, net, problem, seed=0)
        assert trace.validate()

    def test_output_is_independent(self, runner, network_factory):
        net = network_factory(nx.random_regular_graph(5, 40, seed=14), seed=10)
        algorithm = DeterministicRulingSet.for_network(net)
        trace = runner.run(algorithm, net, problems.ruling_set(2, algorithm.coverage_radius), seed=0)
        selected = set(trace.selected_nodes())
        for u, v in net.edges:
            assert not (u in selected and v in selected)
