"""Tests for the maximal matching algorithms (Theorems 4 and 5)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.algorithms.matching import (
    DeterministicMaximalMatching,
    RandomizedMaximalMatching,
    maximum_matching_size,
    random_order_matching,
    sequential_greedy_matching,
)
from repro.core import problems
from repro.core.experiment import run_trials
from repro.core.metrics import (
    edge_averaged_complexity,
    measure,
    node_averaged_complexity,
)

GRAPH_NAMES = ["cycle", "path", "star", "grid", "gnp", "regular4", "tree", "two_triangles", "isolated"]
ALGORITHMS = [RandomizedMaximalMatching, DeterministicMaximalMatching]


class TestCorrectness:
    @pytest.mark.parametrize("algorithm_cls", ALGORITHMS)
    @pytest.mark.parametrize("graph_name", GRAPH_NAMES)
    def test_valid_on_graph_zoo(self, algorithm_cls, graph_name, small_graphs, runner, network_factory):
        net = network_factory(small_graphs[graph_name], seed=1)
        trace = runner.run(algorithm_cls(), net, problems.MAXIMAL_MATCHING, seed=3)
        assert trace.validate(), trace.validate().reason

    @pytest.mark.parametrize("algorithm_cls", ALGORITHMS)
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_valid_across_seeds(self, algorithm_cls, seed, runner, network_factory):
        net = network_factory(nx.gnp_random_graph(50, 0.12, seed=7), seed=2)
        trace = runner.run(algorithm_cls(), net, problems.MAXIMAL_MATCHING, seed=seed)
        assert trace.validate()

    @pytest.mark.parametrize("algorithm_cls", ALGORITHMS)
    def test_every_edge_gets_an_output(self, algorithm_cls, runner, network_factory):
        net = network_factory(nx.gnp_random_graph(30, 0.2, seed=8), seed=3)
        trace = runner.run(algorithm_cls(), net, problems.MAXIMAL_MATCHING, seed=0)
        assert set(trace.edge_outputs) == set(net.edges)

    @pytest.mark.parametrize("algorithm_cls", ALGORITHMS)
    def test_matching_size_at_least_half_of_maximum(self, algorithm_cls, runner, network_factory):
        """Any maximal matching is a 1/2-approximation of a maximum matching."""
        g = nx.gnp_random_graph(40, 0.15, seed=9)
        net = network_factory(g, seed=4)
        trace = runner.run(algorithm_cls(), net, problems.MAXIMAL_MATCHING, seed=1)
        assert 2 * len(trace.selected_edges()) >= maximum_matching_size(g)

    def test_single_edge_graph(self, runner, network_factory):
        g = nx.Graph([(0, 1)])
        net = network_factory(g)
        for algorithm_cls in ALGORITHMS:
            trace = runner.run(algorithm_cls(), net, problems.MAXIMAL_MATCHING, seed=0)
            assert trace.edge_outputs[(0, 1)] is True

    def test_deterministic_is_seed_independent(self, runner, network_factory):
        net = network_factory(nx.gnp_random_graph(40, 0.15, seed=10), seed=5)
        a = runner.run(DeterministicMaximalMatching(), net, problems.MAXIMAL_MATCHING, seed=0)
        b = runner.run(DeterministicMaximalMatching(), net, problems.MAXIMAL_MATCHING, seed=42)
        assert a.edge_outputs == b.edge_outputs

    def test_randomized_marking_factor_validated(self):
        with pytest.raises(ValueError):
            RandomizedMaximalMatching(marking_factor=0)


class TestAveragedComplexityShape:
    def test_theorem4_edge_average_much_smaller_than_worst_case(self, runner, network_factory):
        """Theorem 4: edge-averaged complexity O(1), worst case O(log n)."""
        net = network_factory(nx.gnp_random_graph(150, 0.06, seed=11), seed=6)
        traces = run_trials(
            RandomizedMaximalMatching, net, problems.MAXIMAL_MATCHING,
            trials=3, seed=0, runner=runner,
        )
        m = measure(traces)
        assert m.edge_averaged <= 25.0
        assert m.edge_averaged < m.worst_case
        # Matching labels edges, so the node-averaged complexity (which waits
        # for *all* incident edges) dominates the edge-averaged one.
        assert m.node_averaged >= m.edge_averaged - 1e-9

    def test_theorem4_edge_average_flat_in_n(self, runner, network_factory):
        averages = []
        for n in (50, 150):
            net = network_factory(nx.random_regular_graph(4, n, seed=12), seed=7)
            traces = run_trials(
                RandomizedMaximalMatching, net, problems.MAXIMAL_MATCHING,
                trials=3, seed=0, runner=runner,
            )
            averages.append(edge_averaged_complexity(traces))
        assert averages[1] <= 2.0 * averages[0] + 4.0

    def test_theorem5_deterministic_averages_ordered(self, runner, network_factory):
        """Theorem 5's accounting: edge-averaged ≤ node-averaged ≤ worst case."""
        net = network_factory(nx.random_regular_graph(8, 80, seed=13), seed=8)
        trace = runner.run(DeterministicMaximalMatching(), net, problems.MAXIMAL_MATCHING, seed=0)
        m = measure(trace)
        assert m.edge_averaged <= m.node_averaged + 1e-9
        assert m.node_averaged <= m.worst_case + 1e-9


class TestSequentialReferences:
    def test_greedy_matching_valid(self):
        g = nx.gnp_random_graph(30, 0.2, seed=1)
        matching = sequential_greedy_matching(g)
        outputs = {tuple(sorted(e)): tuple(sorted(e)) in matching for e in g.edges()}
        assert problems.MAXIMAL_MATCHING.validate(g, {}, outputs)

    def test_random_order_matching_valid(self):
        g = nx.gnp_random_graph(30, 0.2, seed=2)
        matching = random_order_matching(g, seed=3)
        outputs = {tuple(sorted(e)): tuple(sorted(e)) in matching for e in g.edges()}
        assert problems.MAXIMAL_MATCHING.validate(g, {}, outputs)

    def test_maximum_matching_size_on_even_cycle(self):
        assert maximum_matching_size(nx.cycle_graph(10)) == 5

    def test_greedy_at_least_half_of_maximum(self):
        g = nx.gnp_random_graph(40, 0.1, seed=4)
        assert 2 * len(sequential_greedy_matching(g)) >= maximum_matching_size(g)
