"""Tests for the sinkless orientation algorithms (Theorem 6 and the randomized baseline)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.algorithms.orientation import (
    DeterministicSinklessOrientation,
    RandomizedSinklessOrientation,
)
from repro.algorithms.orientation.deterministic import (
    _cycle_edges,
    _cycles_through_edge,
    _preferred_head,
)
from repro.core import problems
from repro.core.experiment import run_trials
from repro.core.metrics import measure, node_averaged_complexity

ALGORITHMS = [RandomizedSinklessOrientation, DeterministicSinklessOrientation]


def _regular_network(network_factory, degree: int, n: int, seed: int):
    return network_factory(nx.random_regular_graph(degree, n, seed=seed), seed=seed)


class TestCorrectness:
    @pytest.mark.parametrize("algorithm_cls", ALGORITHMS)
    @pytest.mark.parametrize("degree,n", [(3, 30), (3, 60), (4, 40), (5, 30)])
    def test_valid_on_regular_graphs(self, algorithm_cls, degree, n, runner, network_factory):
        net = _regular_network(network_factory, degree, n, seed=degree + n)
        trace = runner.run(algorithm_cls(), net, problems.SINKLESS_ORIENTATION, seed=1)
        assert trace.validate(), trace.validate().reason

    @pytest.mark.parametrize("algorithm_cls", ALGORITHMS)
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_valid_across_seeds(self, algorithm_cls, seed, runner, network_factory):
        net = _regular_network(network_factory, 3, 80, seed=9)
        trace = runner.run(algorithm_cls(), net, problems.SINKLESS_ORIENTATION, seed=seed)
        assert trace.validate()

    @pytest.mark.parametrize("algorithm_cls", ALGORITHMS)
    def test_every_edge_oriented(self, algorithm_cls, runner, network_factory):
        net = _regular_network(network_factory, 3, 50, seed=5)
        trace = runner.run(algorithm_cls(), net, problems.SINKLESS_ORIENTATION, seed=0)
        assert set(trace.edge_outputs) == set(net.edges)
        for (u, v), head in trace.edge_outputs.items():
            assert head in (u, v)

    @pytest.mark.parametrize("algorithm_cls", ALGORITHMS)
    def test_every_high_degree_node_has_out_edge(self, algorithm_cls, runner, network_factory):
        net = _regular_network(network_factory, 4, 40, seed=6)
        trace = runner.run(algorithm_cls(), net, problems.SINKLESS_ORIENTATION, seed=2)
        out_degree = {v: 0 for v in net.vertices}
        for (u, v), head in trace.edge_outputs.items():
            tail = u if head == v else v
            out_degree[tail] += 1
        assert all(out_degree[v] >= 1 for v in net.vertices)

    @pytest.mark.parametrize("algorithm_cls", ALGORITHMS)
    def test_low_degree_graphs_are_exempt_but_oriented(self, algorithm_cls, runner, network_factory):
        net = network_factory(nx.cycle_graph(12), seed=7)
        trace = runner.run(algorithm_cls(), net, problems.SINKLESS_ORIENTATION, seed=0)
        assert trace.validate()
        assert len(trace.edge_outputs) == net.m

    @pytest.mark.parametrize("algorithm_cls", ALGORITHMS)
    def test_mixed_degree_graph(self, algorithm_cls, runner, network_factory):
        g = nx.random_regular_graph(3, 30, seed=8)
        g.add_edges_from([(30, 0), (30, 1)])  # a degree-2 appendage
        net = network_factory(g, seed=8)
        trace = runner.run(algorithm_cls(), net, problems.SINKLESS_ORIENTATION, seed=0)
        assert trace.validate()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RandomizedSinklessOrientation(min_degree=0)
        with pytest.raises(ValueError):
            DeterministicSinklessOrientation(short_cycle_length=2)
        with pytest.raises(ValueError):
            DeterministicSinklessOrientation(min_degree=0)


class TestAveragedComplexityShape:
    def test_randomized_node_average_flat_in_n(self, runner, network_factory):
        """Section 3.3: the randomized algorithm has node-averaged complexity O(1)."""
        averages = []
        for n in (60, 180):
            net = _regular_network(network_factory, 3, n, seed=11)
            traces = run_trials(
                RandomizedSinklessOrientation, net, problems.SINKLESS_ORIENTATION,
                trials=3, seed=0, runner=runner,
            )
            averages.append(node_averaged_complexity(traces))
        assert max(averages) <= 12.0
        assert averages[1] <= 2.0 * averages[0] + 4.0

    def test_deterministic_average_below_worst_case(self, runner, network_factory):
        net = _regular_network(network_factory, 3, 120, seed=12)
        trace = runner.run(DeterministicSinklessOrientation(), net, problems.SINKLESS_ORIENTATION, seed=0)
        m = measure(trace)
        assert m.node_averaged <= m.worst_case


class TestShortCycleHelpers:
    def test_cycles_through_edge_on_triangle_plus_tail(self):
        edges = {(0, 1), (1, 2), (0, 2), (2, 3)}
        cycles = _cycles_through_edge(0, 1, edges, max_length=6)
        assert len(cycles) == 1
        assert set(cycles[0]) == {0, 1, 2}

    def test_cycles_through_edge_respects_length_cap(self):
        cycle_edges = {(i, (i + 1) % 8) if i < (i + 1) % 8 else ((i + 1) % 8, i) for i in range(8)}
        assert _cycles_through_edge(0, 1, cycle_edges, max_length=6) == []
        assert len(_cycles_through_edge(0, 1, cycle_edges, max_length=8)) == 1

    def test_cycles_through_non_adjacent_pair(self):
        edges = {(0, 1), (1, 2)}
        assert _cycles_through_edge(0, 2, edges, max_length=6) == []

    def test_cycle_edges_closes_the_loop(self):
        assert set(_cycle_edges((0, 1, 2))) == {(0, 1), (1, 2), (0, 2)}

    def test_preferred_head_is_consistent_around_a_cycle(self):
        identifiers = {0: 10, 1: 5, 2: 7, 3: 20}
        cycle = (0, 1, 2, 3)
        out_degree = {v: 0 for v in cycle}
        for i in range(4):
            a, b = cycle[i], cycle[(i + 1) % 4]
            head = _preferred_head(cycle, a, b, identifiers)
            assert head in (a, b)
            tail = a if head == b else b
            out_degree[tail] += 1
        # A consistent cyclic orientation gives every node out-degree exactly 1.
        assert all(d == 1 for d in out_degree.values())

    def test_preferred_head_agrees_for_both_endpoints(self):
        identifiers = {0: 3, 1: 1, 2: 2, 3: 9, 4: 4}
        cycle = (0, 1, 2, 3, 4)
        for i in range(5):
            a, b = cycle[i], cycle[(i + 1) % 5]
            assert _preferred_head(cycle, a, b, identifiers) == _preferred_head(cycle, b, a, identifiers)
