"""Tests for the MIS algorithms (Luby, Ghaffari, deterministic, sequential)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.algorithms.mis import (
    GhaffariMIS,
    LocalMinimumMIS,
    LubyMIS,
    exact_maximum_independent_set,
    greedy_independent_set_lower_bound,
    random_order_mis,
    sequential_greedy_mis,
)
from repro.core import problems
from repro.core.experiment import run_trials
from repro.core.metrics import edge_averaged_complexity, measure, node_averaged_complexity

ALGORITHMS = [LubyMIS, GhaffariMIS, LocalMinimumMIS]
GRAPH_NAMES = ["cycle", "path", "star", "grid", "gnp", "regular4", "tree", "two_triangles", "isolated"]


class TestCorrectness:
    @pytest.mark.parametrize("algorithm_cls", ALGORITHMS)
    @pytest.mark.parametrize("graph_name", GRAPH_NAMES)
    def test_produces_valid_mis(self, algorithm_cls, graph_name, small_graphs, runner, network_factory):
        net = network_factory(small_graphs[graph_name], seed=3)
        trace = runner.run(algorithm_cls(), net, problems.MIS, seed=7)
        assert trace.validate(), trace.validate().reason

    @pytest.mark.parametrize("algorithm_cls", ALGORITHMS)
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_valid_across_seeds(self, algorithm_cls, seed, runner, network_factory):
        net = network_factory(nx.gnp_random_graph(50, 0.12, seed=11), seed=2)
        trace = runner.run(algorithm_cls(), net, problems.MIS, seed=seed)
        assert trace.validate()

    @pytest.mark.parametrize("algorithm_cls", ALGORITHMS)
    def test_isolated_nodes_decide_in_round_zero(self, algorithm_cls, runner, network_factory):
        net = network_factory(nx.empty_graph(8))
        trace = runner.run(algorithm_cls(), net, problems.MIS, seed=0)
        assert trace.rounds == 0
        assert all(trace.node_outputs[v] for v in net.vertices)

    @pytest.mark.parametrize("algorithm_cls", ALGORITHMS)
    def test_complete_graph_selects_exactly_one(self, algorithm_cls, runner, network_factory):
        net = network_factory(nx.complete_graph(12), seed=4)
        trace = runner.run(algorithm_cls(), net, problems.MIS, seed=1)
        assert len(trace.selected_nodes()) == 1

    def test_local_minimum_is_deterministic(self, runner, network_factory):
        net = network_factory(nx.gnp_random_graph(40, 0.15, seed=5), seed=6)
        a = runner.run(LocalMinimumMIS(), net, problems.MIS, seed=0)
        b = runner.run(LocalMinimumMIS(), net, problems.MIS, seed=99)
        assert a.node_outputs == b.node_outputs

    def test_local_minimum_selects_smallest_identifier(self, runner, network_factory):
        net = network_factory(nx.complete_graph(9), seed=8)
        trace = runner.run(LocalMinimumMIS(), net, problems.MIS, seed=0)
        winner = trace.selected_nodes()[0]
        assert net.identifier(winner) == min(net.identifiers)

    def test_ghaffari_rejects_bad_parameter(self):
        with pytest.raises(ValueError):
            GhaffariMIS(initial_desire=0.9)


class TestAveragedComplexityShape:
    def test_luby_edge_averaged_small_on_bounded_degree(self, runner, network_factory):
        """Luby decides most nodes quickly on constant-degree graphs (Section 1.1)."""
        net = network_factory(nx.random_regular_graph(4, 80, seed=1), seed=1)
        traces = run_trials(LubyMIS, net, problems.MIS, trials=3, seed=0, runner=runner)
        assert node_averaged_complexity(traces) <= 8.0
        assert edge_averaged_complexity(traces) <= 8.0

    def test_node_average_below_worst_case(self, runner, network_factory):
        net = network_factory(nx.gnp_random_graph(70, 0.1, seed=2), seed=2)
        traces = run_trials(LubyMIS, net, problems.MIS, trials=3, seed=0, runner=runner)
        m = measure(traces)
        assert m.node_averaged <= m.worst_case

    def test_ghaffari_average_grows_slowly_with_degree(self, runner, network_factory):
        """The node-averaged cost of degree-adaptive MIS stays small as Δ grows."""
        values = []
        for degree in (4, 16):
            net = network_factory(nx.random_regular_graph(degree, 60, seed=3), seed=3)
            traces = run_trials(GhaffariMIS, net, problems.MIS, trials=2, seed=0, runner=runner)
            values.append(node_averaged_complexity(traces))
        assert values[1] <= 4 * values[0] + 10


class TestSequentialReferences:
    def test_sequential_greedy_is_valid(self):
        g = nx.gnp_random_graph(40, 0.2, seed=1)
        mis = sequential_greedy_mis(g)
        outputs = {v: v in mis for v in g.nodes()}
        assert problems.MIS.validate(g, outputs, {})

    def test_random_order_is_valid(self):
        g = nx.gnp_random_graph(40, 0.2, seed=2)
        mis = random_order_mis(g, seed=5)
        outputs = {v: v in mis for v in g.nodes()}
        assert problems.MIS.validate(g, outputs, {})

    def test_greedy_bound_at_most_exact(self):
        g = nx.gnp_random_graph(18, 0.3, seed=3)
        exact = exact_maximum_independent_set(g)
        assert greedy_independent_set_lower_bound(g) <= len(exact)

    def test_exact_mis_on_cycle(self):
        assert len(exact_maximum_independent_set(nx.cycle_graph(9))) == 4
        assert len(exact_maximum_independent_set(nx.cycle_graph(10))) == 5

    def test_exact_mis_size_limit(self):
        with pytest.raises(ValueError):
            exact_maximum_independent_set(nx.path_graph(60))

    def test_exact_mis_is_independent(self):
        g = nx.gnp_random_graph(16, 0.35, seed=4)
        best = exact_maximum_independent_set(g)
        assert all(not g.has_edge(u, v) for u in best for v in best if u != v)
