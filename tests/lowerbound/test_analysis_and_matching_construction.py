"""Direct tests for `repro.lowerbound.analysis` and
`repro.lowerbound.matching_construction`.

Both modules were previously only touched incidentally (one lift test);
these tests pin their observable contracts on small instances — the
per-cluster structural reports and covering bound backing Theorem 16, and
the two-copy perfect-matching construction backing Theorem 17.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.lowerbound.analysis import (
    ClusterReport,
    cluster_reports,
    max_covered_fraction_of_s0,
    tree_like_fraction_of_cluster,
)
from repro.lowerbound.base_graph import build_base_graph
from repro.lowerbound.matching_construction import build_matching_lower_bound_graph


@pytest.fixture(scope="module")
def gk():
    """The smallest interesting base graph: k=0, beta=4 (24 nodes)."""
    return build_base_graph(k=0, beta=4)


class TestClusterReports:
    def test_one_report_per_skeleton_node(self, gk):
        reports = cluster_reports(gk, attempts=2)
        assert [r.skeleton_node for r in reports] == [
            node.index for node in gk.skeleton.nodes
        ]
        for report in reports:
            assert report.size == len(gk.clusters[report.skeleton_node])
            assert report.depth == gk.skeleton.depth(report.skeleton_node)
            assert report.psi == gk.skeleton.psi(report.skeleton_node)

    def test_s0_report_has_no_alpha_bound(self, gk):
        report = next(
            r for r in cluster_reports(gk, attempts=2)
            if r.skeleton_node == gk.skeleton.c0
        )
        # S(c0) is an independent set: psi undefined, alpha = |S(c0)|.
        assert report.psi is None
        assert report.independence_upper_bound is None
        assert report.greedy_independent_set == report.size

    def test_other_clusters_respect_the_lemma_13_bound(self, gk):
        for report in cluster_reports(gk, attempts=4):
            if report.psi is None:
                continue
            expected_bound = report.size // (gk.beta**report.psi)
            assert report.independence_upper_bound == expected_bound
            # The greedy witness can never beat the upper bound...
            assert 1 <= report.greedy_independent_set <= expected_bound
            # ...and on these dense small clusters it should reach it.
            assert report.greedy_independent_set == expected_bound

    def test_as_dict_round_trip(self):
        report = ClusterReport(
            skeleton_node=3,
            depth=1,
            psi=2,
            size=8,
            independence_upper_bound=2,
            greedy_independent_set=2,
        )
        assert report.as_dict() == {
            "cluster": 3,
            "depth": 1,
            "psi": 2,
            "size": 8,
            "alpha_bound": 2,
            "greedy_alpha": 2,
        }


class TestTreeLikeFraction:
    def test_one_hop_views_are_always_trees(self, gk):
        for node in gk.skeleton.nodes:
            assert tree_like_fraction_of_cluster(gk, node.index, 1) == 1.0

    def test_the_base_graph_is_not_two_hop_tree_like(self, gk):
        # The k=0, beta=4 base graph is dense enough that every vertex sees
        # a cycle within two hops — exactly what the lift is for (Lemma 14).
        assert tree_like_fraction_of_cluster(gk, gk.skeleton.c0, 2) == 0.0

    def test_fractions_are_probabilities(self, gk):
        for node in gk.skeleton.nodes:
            for radius in (1, 2, 3):
                fraction = tree_like_fraction_of_cluster(gk, node.index, radius)
                assert 0.0 <= fraction <= 1.0


class TestMaxCoveredFraction:
    def test_k0_beta4_bound_is_pinned(self, gk):
        # One neighbouring cluster of size 8 with psi=1: it contributes at
        # most 8 // 4 = 2 independent nodes, each covering beta^1 = 4 nodes
        # of S(c0) — 8 of the 16 S(c0) nodes, a fraction of 1/2.
        assert max_covered_fraction_of_s0(gk) == 0.5

    def test_matches_the_manual_counting_formula(self):
        gk1 = build_base_graph(k=1, beta=2)
        skeleton = gk1.skeleton
        covered = 0
        for child in skeleton.children(skeleton.c0):
            psi = skeleton.psi(child)
            cluster_size = len(gk1.clusters[child])
            covered += (cluster_size // (gk1.beta**psi)) * (gk1.beta**psi)
        expected = covered / len(gk1.clusters[skeleton.c0])
        assert max_covered_fraction_of_s0(gk1) == expected

    def test_every_maximal_independent_set_obeys_the_bound(self, gk):
        """Theorem 16's counting step, checked against real MIS instances:
        at least a ``1 - bound`` fraction of S(c0) joins any MIS."""
        bound = max_covered_fraction_of_s0(gk)
        s0 = set(gk.special_cluster(0))
        floor = (1.0 - bound) * len(s0)
        for seed in range(5):
            mis = set(nx.maximal_independent_set(gk.graph, seed=seed))
            assert len(mis & s0) >= floor


class TestMatchingConstruction:
    @pytest.fixture(scope="class")
    def instance(self):
        return build_matching_lower_bound_graph(k=0, beta=4, seed=0)

    def test_two_disjoint_copies_plus_a_perfect_matching(self, instance):
        base = instance.base
        assert instance.n == 2 * base.n
        assert (
            instance.graph.number_of_edges()
            == 2 * base.graph.number_of_edges() + base.n
        )
        images_a = set(instance.copy_a.values())
        images_b = set(instance.copy_b.values())
        assert images_a.isdisjoint(images_b)
        assert images_a | images_b == set(instance.graph.nodes())

    def test_cross_matching_joins_every_node_to_its_twin(self, instance):
        base = instance.base
        assert len(instance.cross_matching) == base.n
        twins = {
            frozenset((instance.copy_a[v], instance.copy_b[v]))
            for v in range(base.n)
        }
        assert {frozenset(e) for e in instance.cross_matching} == twins
        for u, v in instance.cross_matching:
            assert instance.graph.has_edge(u, v)
        # Perfect: each node is covered exactly once.
        covered = [v for edge in instance.cross_matching for v in edge]
        assert len(covered) == len(set(covered)) == instance.n

    def test_matching_stays_inside_the_cluster(self, instance):
        base = instance.base
        inverse_a = {image: v for v, image in instance.copy_a.items()}
        inverse_b = {image: v for v, image in instance.copy_b.items()}
        for u, v in instance.cross_matching:
            original_u = inverse_a.get(u, inverse_b.get(u))
            original_v = inverse_a.get(v, inverse_b.get(v))
            assert base.cluster_of[original_u] == base.cluster_of[original_v]

    def test_s0_copies_carry_the_node_mass(self, instance):
        s0 = instance.base.special_cluster(0)
        assert instance.s0_copy_a == sorted(instance.copy_a[v] for v in s0)
        assert instance.s0_copy_b == sorted(instance.copy_b[v] for v in s0)
        assert instance.s0_fraction() == pytest.approx(2 * len(s0) / instance.n)
        # Each S(c0) copy stays an independent set in the union graph.
        for copy in (instance.s0_copy_a, instance.s0_copy_b):
            members = set(copy)
            for u, v in instance.graph.edges():
                assert not (u in members and v in members)

    def test_cross_matching_between_s0_pairs_the_two_copies(self, instance):
        s0_edges = instance.cross_matching_between_s0()
        assert len(s0_edges) == len(instance.s0_copy_a)
        s0_a, s0_b = set(instance.s0_copy_a), set(instance.s0_copy_b)
        for u, v in s0_edges:
            assert (u in s0_a and v in s0_b) or (u in s0_b and v in s0_a)

    def test_lift_order_scales_the_instance(self):
        plain = build_matching_lower_bound_graph(k=0, beta=4, seed=0)
        lifted = build_matching_lower_bound_graph(k=0, beta=4, lift_order=2, seed=0)
        assert lifted.n == 2 * plain.n
        assert lifted.s0_fraction() == pytest.approx(plain.s0_fraction())
        lifted.base.validate_degrees()

    def test_any_maximal_matching_covers_s0_mostly_via_cross_edges(self, instance):
        """The Theorem 17 mechanism on a concrete instance: nodes of the
        S(c0) copies outnumber all other nodes, so maximal matchings must
        pick many of the cross S(c0)–S(c0) twin edges."""
        s0_nodes = set(instance.s0_copy_a) | set(instance.s0_copy_b)
        others = instance.n - len(s0_nodes)
        matching = nx.maximal_matching(instance.graph)
        twin = {frozenset(e) for e in instance.cross_matching_between_s0()}
        picked_twins = sum(1 for e in matching if frozenset(e) in twin)
        matched = {v for e in matching for v in e}
        uncovered_s0 = len(s0_nodes - matched)
        # Every S(c0) node is matched via a twin edge, matched towards a
        # small cluster, or unmatched with all neighbours exhausted; the
        # small clusters can absorb at most `others` of them.
        assert 2 * picked_twins + others >= len(s0_nodes) - uncovered_s0
        # And maximality forbids leaving a twin edge with both ends free.
        for edge in twin:
            u, v = tuple(edge)
            assert u in matched or v in matched
