"""Construction-invariant tests for repro.lowerbound.base_graph and unfold.

The base graph ``G_k`` (Section 4.6) and the tree unfoldings (Theorem 16's
tree instances) were previously only exercised indirectly through the
isomorphism tests; these tests pin the constructions themselves — cluster
sizes, prescribed biregular degrees, edge labels, divisibility errors — plus
a small end-to-end lift of a base graph (``lift_cluster_graph``), which must
preserve the cluster structure and every biregular degree requirement.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.lowerbound.base_graph import ClusterTreeGraph, build_base_graph
from repro.lowerbound.lift import lift_cluster_graph
from repro.lowerbound.unfold import tree_view_instance, unfold_view


class TestBuildBaseGraph:
    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="even integer"):
            build_base_graph(k=0, beta=3)
        with pytest.raises(ValueError, match="even integer"):
            build_base_graph(k=0, beta=0)

    def test_strict_mode_enforces_the_papers_condition(self):
        # 2(k+1)/beta < 1/2 needs beta > 4(k+1): beta=4 fails at k=0.
        with pytest.raises(ValueError, match="strict"):
            build_base_graph(k=0, beta=4, strict=True)
        gk = build_base_graph(k=0, beta=6, strict=True)
        assert gk.beta == 6

    @pytest.mark.parametrize("k,beta", [(0, 2), (0, 4), (1, 2)])
    def test_cluster_sizes_follow_the_formula(self, k, beta):
        gk = build_base_graph(k=k, beta=beta)
        half = beta // 2
        for node in gk.skeleton.nodes:
            depth = gk.skeleton.depth(node.index)
            expected = 2 * beta ** (k + 1) * half ** (k + 1 - depth)
            assert len(gk.clusters[node.index]) == expected
        assert gk.n == sum(len(members) for members in gk.clusters.values())
        assert gk.n == gk.graph.number_of_nodes()

    def test_cluster_bookkeeping_is_a_partition(self):
        gk = build_base_graph(k=0, beta=4)
        seen = set()
        for cluster, members in gk.clusters.items():
            for vertex in members:
                assert gk.cluster_of[vertex] == cluster
                assert vertex not in seen
                seen.add(vertex)
        assert seen == set(range(gk.n))

    def test_s_c0_is_an_independent_set(self):
        gk = build_base_graph(k=0, beta=4)
        s0 = set(gk.special_cluster(0))
        for u, v in gk.graph.edges():
            assert not (u in s0 and v in s0)
        with pytest.raises(ValueError):
            gk.special_cluster(2)

    @pytest.mark.parametrize("k,beta", [(0, 2), (0, 4), (1, 2)])
    def test_prescribed_biregular_degrees_hold(self, k, beta):
        gk = build_base_graph(k=k, beta=beta)
        gk.validate_degrees()  # raises AssertionError on any violation
        assert max(d for _, d in gk.graph.degree()) <= gk.max_degree_bound()

    def test_edge_labels_are_direction_dependent(self):
        gk = build_base_graph(k=0, beta=4)
        c0, c1 = gk.skeleton.c0, gk.skeleton.c1
        u = gk.clusters[c0][0]
        neighbor = next(
            v for v in gk.graph.neighbors(u) if gk.cluster_of[v] == c1
        )
        # c0 reaches its child with 2*beta^0; the child reaches back with beta^psi.
        assert gk.edge_label(u, neighbor) == (0, False)
        assert gk.edge_label(neighbor, u) == (1, False)
        # Intra-cluster edges of S(c1) carry the self marker with exponent psi.
        v = gk.clusters[c1][0]
        internal = next(
            w for w in gk.graph.neighbors(v) if gk.cluster_of[w] == c1
        )
        assert gk.edge_label(v, internal) == (1, True)

    def test_edge_label_rejects_non_adjacent_clusters_and_s0_self_edges(self):
        gk = build_base_graph(k=1, beta=2)
        a, b = gk.clusters[gk.skeleton.c0][:2]
        with pytest.raises(ValueError, match="independent set"):
            gk.edge_label(a, b)

    def test_seed_changes_matchings_not_structure(self):
        first = build_base_graph(k=0, beta=4, seed=0)
        second = build_base_graph(k=0, beta=4, seed=1)
        assert first.n == second.n
        assert first.graph.number_of_edges() == second.graph.number_of_edges()
        second.validate_degrees()

    def test_k_property_and_neighbor_cluster_nodes(self):
        gk = build_base_graph(k=1, beta=2)
        assert gk.k == 1
        neighbors_of_c0 = gk.neighbor_cluster_nodes(gk.skeleton.c0)
        child_clusters = gk.skeleton.children(gk.skeleton.c0)
        assert sorted(neighbors_of_c0) == sorted(
            v for c in child_clusters for v in gk.clusters[c]
        )


class TestUnfoldView:
    def test_unfolding_is_a_tree_rooted_at_the_center(self):
        gk = build_base_graph(k=0, beta=4)
        center = gk.special_cluster(0)[0]
        tree, origin, root = unfold_view(gk, center, radius=2)
        assert nx.is_tree(tree)
        assert origin[root] == center
        assert tree.degree(root) == gk.graph.degree(center)

    def test_origin_maps_tree_edges_to_graph_edges(self):
        gk = build_base_graph(k=0, beta=4)
        center = gk.special_cluster(1)[0]
        tree, origin, _ = unfold_view(gk, center, radius=2)
        for a, b in tree.edges():
            assert gk.graph.has_edge(origin[a], origin[b])

    def test_radius_zero_is_a_single_node(self):
        gk = build_base_graph(k=0, beta=4)
        tree, origin, root = unfold_view(gk, 0, radius=0)
        assert tree.number_of_nodes() == 1 and origin == {root: 0}

    def test_children_never_step_back_to_the_parent_copy(self):
        gk = build_base_graph(k=0, beta=4)
        center = gk.special_cluster(0)[0]
        tree, origin, root = unfold_view(gk, center, radius=2)
        for child in tree.neighbors(root):
            for grandchild in tree.neighbors(child):
                if grandchild == root:
                    continue
                assert origin[grandchild] != origin[root]


class TestTreeViewInstance:
    def test_instance_is_a_forest_of_the_two_views(self):
        gk = build_base_graph(k=0, beta=4)
        v0 = gk.special_cluster(0)[0]
        v1 = gk.special_cluster(1)[0]
        instance, root0, root1 = tree_view_instance(gk, v0, v1)
        assert isinstance(instance, ClusterTreeGraph)
        assert nx.is_forest(instance.graph)
        assert nx.number_connected_components(instance.graph) == 2
        assert instance.cluster_of[root0] == gk.skeleton.c0
        assert instance.cluster_of[root1] == gk.skeleton.c1

    def test_cluster_membership_is_inherited_from_origins(self):
        gk = build_base_graph(k=0, beta=4)
        v0 = gk.special_cluster(0)[0]
        v1 = gk.special_cluster(1)[0]
        instance, _, _ = tree_view_instance(gk, v0, v1, radius=1)
        for cluster, members in instance.clusters.items():
            for vertex in members:
                assert instance.cluster_of[vertex] == cluster
        assert set(instance.cluster_of) == set(instance.graph.nodes())

    def test_explicit_radius_bounds_the_views(self):
        gk = build_base_graph(k=0, beta=4)
        v0 = gk.special_cluster(0)[0]
        v1 = gk.special_cluster(1)[0]
        small, _, _ = tree_view_instance(gk, v0, v1, radius=1)
        large, _, _ = tree_view_instance(gk, v0, v1, radius=2)
        assert small.graph.number_of_nodes() < large.graph.number_of_nodes()


class TestEndToEndLift:
    def test_lifted_base_graph_keeps_biregular_degrees(self):
        """Small end-to-end lift: G_0 -> order-3 lift, still a member of G_0."""
        base = build_base_graph(k=0, beta=2, seed=1)
        lifted = lift_cluster_graph(base, order=3, seed=2)
        assert lifted.n == 3 * base.n
        assert lifted.beta == base.beta
        assert lifted.skeleton is base.skeleton
        # Fibers stay inside their base vertex's cluster...
        for cluster, members in lifted.clusters.items():
            assert len(members) == 3 * len(base.clusters[cluster])
        # ...so every prescribed biregular degree still holds exactly.
        lifted.validate_degrees()
        # And the lift's views unfold like the base graph's: same root degree.
        v0 = lifted.special_cluster(0)[0]
        tree, _, root = unfold_view(lifted, v0, radius=1)
        assert tree.degree(root) == lifted.graph.degree(v0)
