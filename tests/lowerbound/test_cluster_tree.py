"""Tests for the cluster tree skeleton and the base graph construction (Section 4)."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lowerbound.base_graph import build_base_graph
from repro.lowerbound.cluster_tree import ClusterTreeSkeleton


class TestSkeletonStructure:
    @pytest.mark.parametrize("k", [0, 1, 2, 3, 4, 5])
    def test_observation7_holds(self, k):
        skeleton = ClusterTreeSkeleton(k)
        skeleton.validate()

    def test_ct0_matches_base_case(self):
        skeleton = ClusterTreeSkeleton(0)
        assert len(skeleton) == 2
        assert skeleton.internal_nodes() == [0]
        assert skeleton.leaves() == [1]
        assert skeleton.psi(skeleton.c1) == 1

    def test_ct1_node_count(self):
        # CT_1: c0, c1, one new leaf on c0, one new leaf on c1 (j ∈ {0,1}\{1}).
        assert len(ClusterTreeSkeleton(1)) == 4

    def test_ct2_node_count_matches_figure1(self):
        # Figure 1 shows CT_2 with 10 skeleton nodes.
        assert len(ClusterTreeSkeleton(2)) == 10

    @pytest.mark.parametrize("k", [0, 1, 2, 3, 4])
    def test_c0_has_k_plus_one_children(self, k):
        skeleton = ClusterTreeSkeleton(k)
        assert len(skeleton.children(skeleton.c0)) == k + 1

    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_internal_nodes_have_k_children(self, k):
        skeleton = ClusterTreeSkeleton(k)
        for v in skeleton.internal_nodes():
            if v == skeleton.c0:
                continue
            assert len(skeleton.children(v)) == k

    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    def test_observation9_out_label_counts(self, k):
        skeleton = ClusterTreeSkeleton(k)
        for v in skeleton.internal_nodes():
            counts = skeleton.out_label_counts(v)
            if v == skeleton.c0:
                assert counts == {i: 2 for i in range(k + 1)}
            else:
                assert counts == {i: 2 for i in range(k + 1)}
        for leaf in skeleton.leaves():
            counts = skeleton.out_label_counts(leaf)
            psi = skeleton.psi(leaf)
            assert counts == {psi: 2}

    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    def test_depth_bounds(self, k):
        skeleton = ClusterTreeSkeleton(k)
        depths = [skeleton.depth(v.index) for v in skeleton.nodes]
        assert min(depths) == 0
        assert max(depths) <= k + 1

    def test_directed_edge_count(self):
        skeleton = ClusterTreeSkeleton(2)
        # Every non-root node contributes three directed edges (to parent, from
        # parent, self-loop).
        assert len(skeleton.directed_edges()) == 3 * (len(skeleton) - 1)

    def test_summary_keys(self):
        summary = ClusterTreeSkeleton(2).summary()
        assert summary["k"] == 2 and summary["nodes"] == 10
        assert summary["internal"] + summary["leaves"] == summary["nodes"]

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            ClusterTreeSkeleton(-1)

    @given(st.integers(min_value=0, max_value=6))
    @settings(max_examples=7, deadline=None)
    def test_skeleton_growth_recurrence(self, k):
        """|CT_k| = |CT_{k-1}| + #internal_{k-1} + k · #leaves_{k-1}."""
        if k == 0:
            assert len(ClusterTreeSkeleton(0)) == 2
            return
        prev = ClusterTreeSkeleton(k - 1)
        current = ClusterTreeSkeleton(k)
        expected = len(prev) + len(prev.internal_nodes()) + k * len(prev.leaves())
        assert len(current) == expected


class TestSkeletonEdgesAndAccessors:
    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    def test_directed_edges_are_consistent_with_attachment(self, k):
        """Each non-root node yields (parent→v, 2β^j), (v→parent, β^{j+1}), self-loop β^{j+1}."""
        skeleton = ClusterTreeSkeleton(k)
        edges = skeleton.directed_edges()
        by_node = {}
        for u, v, exponent, doubled in edges:
            by_node.setdefault((u, v), []).append((exponent, doubled))
        for node in skeleton.nodes:
            if node.parent is None:
                continue
            j = node.attach_exponent
            assert by_node[(node.parent, node.index)] == [(j, True)]
            assert by_node[(node.index, node.parent)] == [(j + 1, False)]
            assert by_node[(node.index, node.index)] == [(j + 1, False)]

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_out_label_counts_match_directed_edge_multiset(self, k):
        """out_label_counts is the per-exponent tally of the directed edge list."""
        skeleton = ClusterTreeSkeleton(k)
        tallies = {v.index: {} for v in skeleton.nodes}
        for u, v, exponent, doubled in skeleton.directed_edges():
            tally = tallies[u]
            tally[exponent] = tally.get(exponent, 0) + (2 if doubled else 1)
        for v in range(len(skeleton)):
            assert skeleton.out_label_counts(v) == tallies[v]

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_children_are_born_after_their_parent(self, k):
        skeleton = ClusterTreeSkeleton(k)
        for node in skeleton.nodes:
            assert all(child > node.index for child in node.children)
            if node.parent is not None:
                assert skeleton.depth(node.index) == skeleton.depth(node.parent) + 1

    def test_children_accessor_returns_a_copy(self):
        skeleton = ClusterTreeSkeleton(2)
        children = skeleton.children(skeleton.c0)
        children.append(999)
        assert 999 not in skeleton.children(skeleton.c0)

    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_population_recurrence(self, k):
        """Internal nodes of CT_k are exactly the nodes of CT_{k-1}."""
        prev = ClusterTreeSkeleton(k - 1)
        current = ClusterTreeSkeleton(k)
        assert len(current.internal_nodes()) == len(prev)
        assert len(current.leaves()) == len(prev.internal_nodes()) + k * len(prev.leaves())

    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    def test_psi_range_partitions_leaves(self, k):
        """Every leaf's self-loop exponent lies in 1..k+1, and each value occurs."""
        skeleton = ClusterTreeSkeleton(k)
        psis = [skeleton.psi(leaf) for leaf in skeleton.leaves()]
        assert all(1 <= p <= k + 1 for p in psis)
        assert set(psis) == set(range(1, k + 2))


class TestBaseGraph:
    @pytest.mark.parametrize("k,beta", [(0, 2), (0, 4), (1, 4), (1, 6)])
    def test_biregular_degrees_hold_exactly(self, k, beta):
        gk = build_base_graph(k, beta)
        gk.validate_degrees()

    def test_cluster_sizes_follow_lemma13(self):
        gk = build_base_graph(1, 4)
        skeleton = gk.skeleton
        for node in skeleton.nodes:
            depth = skeleton.depth(node.index)
            expected = 2 * 4 ** 2 * 2 ** (2 - depth)
            assert len(gk.clusters[node.index]) == expected

    def test_s0_is_independent_set(self):
        gk = build_base_graph(1, 4)
        s0 = set(gk.special_cluster(0))
        for u, v in gk.graph.edges():
            assert not (u in s0 and v in s0)

    def test_s0_is_the_largest_cluster(self):
        gk = build_base_graph(1, 4)
        sizes = {c: len(members) for c, members in gk.clusters.items()}
        assert sizes[gk.skeleton.c0] == max(sizes.values())

    def test_max_degree_bound_of_lemma13(self):
        gk = build_base_graph(1, 4)
        max_degree = max(dict(gk.graph.degree()).values())
        assert max_degree <= gk.max_degree_bound()

    def test_total_size_order(self):
        """Lemma 13: the total number of nodes is O(β^{2k+2})."""
        for beta in (4, 6):
            gk = build_base_graph(1, beta)
            assert gk.n <= 8 * beta ** 4

    @pytest.mark.parametrize("k,beta", [(0, 4), (1, 4)])
    def test_cluster_independence_bound_of_lemma13(self, k, beta):
        from repro.algorithms.mis.sequential import greedy_independent_set_lower_bound

        gk = build_base_graph(k, beta)
        for node in gk.skeleton.nodes:
            psi = gk.skeleton.psi(node.index)
            if psi is None:
                continue
            induced = nx.Graph(gk.graph.subgraph(gk.clusters[node.index]))
            bound = len(gk.clusters[node.index]) // beta ** psi
            assert greedy_independent_set_lower_bound(induced, attempts=2) <= bound

    def test_edge_labels_directional(self):
        gk = build_base_graph(1, 4)
        skeleton = gk.skeleton
        c1 = skeleton.c1
        some_c1_vertex = gk.clusters[c1][0]
        c0_neighbors = [
            u for u in gk.graph.neighbors(some_c1_vertex)
            if gk.cluster_of[u] == skeleton.c0
        ]
        assert c0_neighbors
        exponent_up, is_self_up = gk.edge_label(some_c1_vertex, c0_neighbors[0])
        exponent_down, is_self_down = gk.edge_label(c0_neighbors[0], some_c1_vertex)
        assert (exponent_up, is_self_up) == (1, False)  # child → parent: β^ψ = β^1
        assert (exponent_down, is_self_down) == (0, False)  # parent → child: 2β^0

    def test_edge_label_self_edges(self):
        gk = build_base_graph(1, 4)
        c1 = gk.skeleton.c1
        members = set(gk.clusters[c1])
        vertex = gk.clusters[c1][0]
        internal_neighbors = [u for u in gk.graph.neighbors(vertex) if u in members]
        assert internal_neighbors
        exponent, is_self = gk.edge_label(vertex, internal_neighbors[0])
        assert is_self and exponent == gk.skeleton.psi(c1)

    def test_odd_beta_rejected(self):
        with pytest.raises(ValueError):
            build_base_graph(1, 5)

    def test_strict_mode_enforces_paper_condition(self):
        with pytest.raises(ValueError):
            build_base_graph(1, 4, strict=True)
        # β = 10 > 4(k+1) = 8 satisfies the condition for k = 1.
        gk = build_base_graph(1, 10, strict=True)
        assert gk.n > 0

    def test_special_cluster_arguments(self):
        gk = build_base_graph(0, 4)
        assert gk.special_cluster(0) and gk.special_cluster(1)
        with pytest.raises(ValueError):
            gk.special_cluster(2)
