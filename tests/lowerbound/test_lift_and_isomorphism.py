"""Tests for random lifts, the view-isomorphism Algorithm 1, unfoldings, and Theorem 17."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.graphs.girth import girth, nodes_with_tree_like_view
from repro.lowerbound.analysis import (
    cluster_reports,
    max_covered_fraction_of_s0,
    tree_like_fraction_of_cluster,
)
from repro.lowerbound.base_graph import build_base_graph
from repro.lowerbound.isomorphism import IsomorphismError, find_isomorphism, verify_view_isomorphism
from repro.lowerbound.lift import lift_cluster_graph, random_lift
from repro.lowerbound.matching_construction import build_matching_lower_bound_graph
from repro.lowerbound.unfold import tree_view_instance, unfold_view


class TestRandomLift:
    def test_lift_preserves_degrees(self):
        base = nx.random_regular_graph(3, 10, seed=1)
        lifted, projection = random_lift(base, order=4, seed=2)
        assert lifted.number_of_nodes() == 40
        assert all(d == 3 for _, d in lifted.degree())
        assert set(projection.values()) == set(base.nodes())

    def test_lift_order_one_is_isomorphic_copy(self):
        base = nx.petersen_graph()
        lifted, _ = random_lift(base, order=1, seed=3)
        assert nx.is_isomorphic(base, lifted)

    def test_fibers_have_equal_size(self):
        base = nx.cycle_graph(6)
        _, projection = random_lift(base, order=5, seed=4)
        sizes = {}
        for lifted_vertex, base_vertex in projection.items():
            sizes[base_vertex] = sizes.get(base_vertex, 0) + 1
        assert set(sizes.values()) == {5}

    def test_covering_map_property(self):
        """Every lifted vertex's neighbours project bijectively onto the base neighbours."""
        base = nx.random_regular_graph(4, 12, seed=5)
        lifted, projection = random_lift(base, order=3, seed=6)
        for v in lifted.nodes():
            projected = sorted(projection[u] for u in lifted.neighbors(v))
            assert projected == sorted(base.neighbors(projection[v]))

    def test_lifting_increases_girth_of_small_cycle(self):
        """Lemma 12 flavour: lifts of a triangle have few short cycles."""
        triangle = nx.cycle_graph(3)
        lifted, _ = random_lift(triangle, order=7, seed=7)
        assert girth(lifted) >= 3
        assert lifted.number_of_nodes() == 21

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            random_lift(nx.path_graph(3), order=0)

    def test_lift_cluster_graph_preserves_structure(self):
        base = build_base_graph(1, 4)
        lifted = lift_cluster_graph(base, order=3, seed=1)
        assert lifted.n == 3 * base.n
        lifted.validate_degrees()
        for cluster, members in lifted.clusters.items():
            assert len(members) == 3 * len(base.clusters[cluster])

    def test_lift_improves_tree_likeness(self):
        """Lemma 14: lifted graphs have (weakly) more locally tree-like nodes."""
        base = build_base_graph(0, 4)
        lifted = lift_cluster_graph(base, order=6, seed=2)
        base_fraction = len(nodes_with_tree_like_view(base.graph, 1)) / base.n
        lifted_fraction = len(nodes_with_tree_like_view(lifted.graph, 1)) / lifted.n
        assert lifted_fraction >= base_fraction


class TestLiftDeterminismAndStructure:
    def test_same_seed_reproduces_the_lift(self):
        base = nx.random_regular_graph(3, 10, seed=8)
        first, _ = random_lift(base, order=4, seed=9)
        second, _ = random_lift(base, order=4, seed=9)
        assert sorted(first.edges()) == sorted(second.edges())

    def test_different_seeds_give_different_matchings(self):
        base = nx.random_regular_graph(3, 10, seed=8)
        first, _ = random_lift(base, order=7, seed=1)
        second, _ = random_lift(base, order=7, seed=2)
        assert sorted(first.edges()) != sorted(second.edges())

    def test_edge_count_scales_with_the_order(self):
        base = nx.random_regular_graph(4, 10, seed=3)
        for order in (1, 2, 5):
            lifted, _ = random_lift(base, order=order, seed=0)
            assert lifted.number_of_edges() == order * base.number_of_edges()

    def test_edgeless_base_lifts_to_isolated_fibers(self):
        base = nx.empty_graph(4)
        lifted, projection = random_lift(base, order=3, seed=0)
        assert lifted.number_of_nodes() == 12
        assert lifted.number_of_edges() == 0
        assert len(projection) == 12

    def test_cluster_lift_projection_respects_clusters(self):
        """Every lifted vertex sits in the cluster of its base vertex."""
        base = build_base_graph(1, 4)
        lifted = lift_cluster_graph(base, order=2, seed=4)
        _, projection = random_lift(base.graph, order=2, seed=4)
        for cluster, members in lifted.clusters.items():
            for v in members:
                assert lifted.cluster_of[v] == cluster
                assert base.cluster_of[projection[v]] == cluster

    def test_cluster_lift_preserves_edge_labels(self):
        """Lifted edges carry the label of the base edge they cover."""
        base = build_base_graph(0, 4)
        lifted = lift_cluster_graph(base, order=3, seed=5)
        _, projection = random_lift(base.graph, order=3, seed=5)
        checked = 0
        for u, v in list(lifted.graph.edges())[:60]:
            assert lifted.edge_label(u, v) == base.edge_label(projection[u], projection[v])
            checked += 1
        assert checked


class TestTheorem11Isomorphism:
    @pytest.fixture(scope="class")
    def lifted_k1(self):
        return lift_cluster_graph(build_base_graph(1, 4), order=3, seed=1)

    def test_isomorphism_exists_for_tree_like_pairs(self, lifted_k1):
        tree_like = nodes_with_tree_like_view(lifted_k1.graph, 1)
        s0 = [v for v in lifted_k1.special_cluster(0) if v in tree_like][:4]
        s1 = [v for v in lifted_k1.special_cluster(1) if v in tree_like][:4]
        assert s0 and s1
        for v0 in s0:
            for v1 in s1:
                phi = find_isomorphism(lifted_k1, v0, v1)
                assert verify_view_isomorphism(lifted_k1, phi, v0, v1)

    def test_isomorphism_maps_whole_view(self, lifted_k1):
        v0 = lifted_k1.special_cluster(0)[0]
        v1 = lifted_k1.special_cluster(1)[0]
        phi = find_isomorphism(lifted_k1, v0, v1)
        # The radius-1 view of v0 contains v0 plus all its neighbours.
        assert len(phi) == 1 + lifted_k1.graph.degree(v0)

    def test_wrong_cluster_arguments_rejected(self, lifted_k1):
        v0 = lifted_k1.special_cluster(0)[0]
        v1 = lifted_k1.special_cluster(1)[0]
        with pytest.raises(ValueError):
            find_isomorphism(lifted_k1, v1, v1)
        with pytest.raises(ValueError):
            find_isomorphism(lifted_k1, v0, v0)

    def test_theorem11_on_unfolded_views_k2(self):
        """At k = 2 high-girth lifts are infeasible, so verify on tree unfoldings."""
        gk = build_base_graph(2, 4)
        instance, root0, root1 = tree_view_instance(
            gk, gk.special_cluster(0)[0], gk.special_cluster(1)[0]
        )
        phi = find_isomorphism(instance, root0, root1)
        assert verify_view_isomorphism(instance, phi, root0, root1)

    def test_unfold_view_is_a_tree(self):
        gk = build_base_graph(1, 4)
        tree, origin, root = unfold_view(gk, gk.special_cluster(0)[0], 2)
        assert nx.is_tree(tree)
        assert origin[root] == gk.special_cluster(0)[0]
        # Root degree matches the original degree.
        assert tree.degree(root) == gk.graph.degree(gk.special_cluster(0)[0])

    def test_unfolded_instance_preserves_cluster_degrees_at_root(self):
        gk = build_base_graph(1, 4)
        instance, root0, _ = tree_view_instance(gk, gk.special_cluster(0)[0], gk.special_cluster(1)[0])
        labels = [instance.edge_label(root0, u)[0] for u in instance.graph.neighbors(root0)]
        assert sorted(set(labels)) == [0, 1]


class TestVerifierRejectsCorruptMappings:
    @pytest.fixture(scope="class")
    def valid_pair(self):
        gk = lift_cluster_graph(build_base_graph(1, 4), order=3, seed=1)
        tree_like = nodes_with_tree_like_view(gk.graph, 1)
        v0 = next(v for v in gk.special_cluster(0) if v in tree_like)
        v1 = next(v for v in gk.special_cluster(1) if v in tree_like)
        phi = find_isomorphism(gk, v0, v1)
        assert verify_view_isomorphism(gk, phi, v0, v1)
        return gk, phi, v0, v1

    def test_rejects_wrong_centre(self, valid_pair):
        gk, phi, v0, v1 = valid_pair
        other = next(u for u in phi.values() if u != v1)
        assert not verify_view_isomorphism(gk, phi, v0, other)

    def test_rejects_non_injective_mapping(self, valid_pair):
        gk, phi, v0, v1 = valid_pair
        corrupt = dict(phi)
        keys = [v for v in corrupt if v != v0]
        corrupt[keys[0]] = corrupt[keys[1]]
        assert not verify_view_isomorphism(gk, corrupt, v0, v1)

    def test_rejects_partial_mapping(self, valid_pair):
        gk, phi, v0, v1 = valid_pair
        corrupt = dict(phi)
        del corrupt[next(v for v in corrupt if v != v0)]
        assert not verify_view_isomorphism(gk, corrupt, v0, v1)

    def test_rejects_distance_breaking_swap(self, valid_pair):
        gk, phi, v0, v1 = valid_pair
        corrupt = dict(phi)
        # Map a radius-1 node onto the centre's image: distances can no
        # longer be preserved.
        corrupt[next(v for v in corrupt if v != v0)] = v1
        assert not verify_view_isomorphism(gk, corrupt, v0, v1)

    def test_algorithm1_raises_on_cyclic_views(self):
        """Non-tree-like centres make the lockstep pairing fail loudly.

        On the unlifted base graph at k=2 the dense clusters put short
        cycles inside the radius-2 views, so Algorithm 1's lockstep pairing
        revisits nodes with conflicting partners and raises — it never
        silently fabricates a mapping for a cyclic view.  (k=1 would be
        vacuous: radius-1 views exclude boundary-boundary edges, so every
        pair is star-isomorphic.)
        """
        gk = build_base_graph(2, 4)
        tree_like = set(nodes_with_tree_like_view(gk.graph, 2))
        cyclic_s0 = [v for v in gk.special_cluster(0) if v not in tree_like][:2]
        cyclic_s1 = [v for v in gk.special_cluster(1) if v not in tree_like][:2]
        assert cyclic_s0 and cyclic_s1
        for v0 in cyclic_s0:
            for v1 in cyclic_s1:
                with pytest.raises(IsomorphismError):
                    find_isomorphism(gk, v0, v1)


class TestLowerBoundAnalysis:
    def test_cluster_reports_respect_bounds(self):
        gk = build_base_graph(1, 4)
        for report in cluster_reports(gk):
            if report.independence_upper_bound is not None:
                assert report.greedy_independent_set <= report.independence_upper_bound
            assert report.size == len(gk.clusters[report.skeleton_node])

    def test_covered_fraction_bound_positive(self):
        gk = build_base_graph(1, 4)
        assert max_covered_fraction_of_s0(gk) > 0

    def test_tree_like_fraction_of_cluster_in_range(self):
        lifted = lift_cluster_graph(build_base_graph(1, 4), order=2, seed=3)
        fraction = tree_like_fraction_of_cluster(lifted, lifted.skeleton.c0, radius=1)
        assert 0.0 <= fraction <= 1.0


class TestTheorem17Construction:
    def test_two_copy_structure(self):
        instance = build_matching_lower_bound_graph(1, 4)
        assert instance.n == 2 * instance.base.n
        assert len(instance.cross_matching) == instance.base.n
        # The cross matching is a perfect matching of the union graph.
        matched = [v for e in instance.cross_matching for v in e]
        assert len(matched) == len(set(matched)) == instance.n

    def test_s0_contains_large_fraction(self):
        instance = build_matching_lower_bound_graph(1, 4)
        assert instance.s0_fraction() > 0.4

    def test_cross_matching_between_s0_copies(self):
        instance = build_matching_lower_bound_graph(1, 4)
        cross_s0 = instance.cross_matching_between_s0()
        assert len(cross_s0) == len(instance.s0_copy_a)
        s0_b = set(instance.s0_copy_b)
        for u, v in cross_s0:
            assert u in s0_b or v in s0_b

    def test_any_maximal_matching_needs_cross_s0_edges(self):
        """Theorem 17's counting: S(c0) twins can only be covered by cross edges."""
        from repro.algorithms.matching.sequential import random_order_matching

        instance = build_matching_lower_bound_graph(0, 8)
        matching = random_order_matching(instance.graph, seed=1)
        cross_s0 = set(instance.cross_matching_between_s0())
        used_cross = sum(1 for e in matching if e in cross_s0)
        # With β = 8 the two copies of S(c1) together hold |S(c0)|/2 nodes, so
        # by maximality at least half of the S(c0) twin pairs must use their
        # cross edge in *every* maximal matching.
        assert used_cross >= len(instance.s0_copy_a) // 2

    def test_with_lift(self):
        instance = build_matching_lower_bound_graph(0, 4, lift_order=2, seed=5)
        assert instance.n == 4 * build_base_graph(0, 4).n
