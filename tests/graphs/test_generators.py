"""Tests for graph generators, girth utilities, and transforms."""

from __future__ import annotations

import math

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import generators as gen
from repro.graphs import girth as gi
from repro.graphs import transforms as tr


class TestGenerators:
    @pytest.mark.parametrize("n", [3, 5, 12, 30])
    def test_cycle(self, n):
        g = gen.cycle_graph(n)
        assert g.number_of_nodes() == n and g.number_of_edges() == n
        assert all(d == 2 for _, d in g.degree())

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            gen.cycle_graph(2)

    @pytest.mark.parametrize("degree,n", [(3, 10), (4, 20), (5, 16)])
    def test_random_regular(self, degree, n):
        g = gen.random_regular_graph(degree, n, seed=1)
        assert all(d == degree for _, d in g.degree())

    def test_random_regular_parity_check(self):
        with pytest.raises(ValueError):
            gen.random_regular_graph(3, 9)

    def test_erdos_renyi_degree_target(self):
        g = gen.erdos_renyi_graph(200, 6.0, seed=2)
        average = 2 * g.number_of_edges() / 200
        assert 4.0 < average < 8.0

    def test_erdos_renyi_single_node(self):
        g = gen.erdos_renyi_graph(1, 3.0)
        assert g.number_of_nodes() == 1 and g.number_of_edges() == 0

    def test_bipartite_biregular(self):
        g = gen.random_bipartite_regular_graph(left=12, right=8, left_degree=2, seed=3)
        left_degrees = [g.degree(v) for v in range(12)]
        right_degrees = [g.degree(v) for v in range(12, 20)]
        assert all(d == 2 for d in left_degrees)
        assert all(d == 3 for d in right_degrees)

    def test_bipartite_non_divisible_still_left_regular(self):
        g = gen.random_bipartite_regular_graph(left=5, right=3, left_degree=2, seed=4)
        assert all(g.degree(v) == 2 for v in range(5))

    @pytest.mark.parametrize("n", [1, 2, 5, 40])
    def test_random_tree(self, n):
        g = gen.random_tree(n, seed=5)
        assert g.number_of_nodes() == n
        assert nx.is_tree(g)

    def test_complete_binary_tree(self):
        g = gen.complete_binary_tree(3)
        assert g.number_of_nodes() == 2 ** 4 - 1
        assert nx.is_tree(g)

    def test_spider(self):
        g = gen.spider_tree(legs=4, leg_length=3)
        assert g.number_of_nodes() == 13
        assert g.degree(0) == 4
        assert nx.is_tree(g)

    @pytest.mark.parametrize("max_degree", [1, 3, 6])
    def test_bounded_degree(self, max_degree):
        g = gen.bounded_degree_graph(50, max_degree, seed=6)
        assert max((d for _, d in g.degree()), default=0) <= max_degree

    @pytest.mark.parametrize("min_degree", [3, 4])
    def test_min_degree_graph(self, min_degree):
        g = gen.min_degree_graph(30, min_degree, seed=7)
        assert min(d for _, d in g.degree()) >= min_degree

    def test_grid(self):
        g = gen.grid_graph(4, 5)
        assert g.number_of_nodes() == 20
        assert set(g.nodes()) == set(range(20))

    def test_star(self):
        g = gen.star_graph(7)
        assert g.degree(0) == 7


class TestGirth:
    def test_tree_has_infinite_girth(self):
        assert gi.girth(nx.balanced_tree(2, 3)) == math.inf

    def test_cycle_girth(self):
        assert gi.girth(nx.cycle_graph(9)) == 9

    def test_complete_graph_girth(self):
        assert gi.girth(nx.complete_graph(5)) == 3

    def test_petersen_girth(self):
        assert gi.girth(nx.petersen_graph()) == 5

    def test_shortest_cycle_through_vertex(self):
        g = nx.cycle_graph(8)
        g.add_edge(0, 4)  # chord creating 5-cycles through 0 and 4
        assert gi.shortest_cycle_through(g, 0) == 5
        assert gi.shortest_cycle_through(g, 2) == 5

    def test_shortest_cycle_through_acyclic(self):
        assert gi.shortest_cycle_through(nx.path_graph(5), 2) == math.inf

    def test_has_cycle_within_distance(self):
        g = nx.cycle_graph(10)
        assert not gi.has_cycle_within_distance(g, 0, 4)
        assert gi.has_cycle_within_distance(g, 0, 10)

    def test_tree_like_nodes_of_lollipop(self):
        # Triangle with a long tail: tail nodes far from the triangle are tree-like.
        g = nx.cycle_graph(3)
        g.add_edges_from([(2, 3), (3, 4), (4, 5), (5, 6)])
        tree_like = gi.nodes_with_tree_like_view(g, 2)
        assert 6 in tree_like and 0 not in tree_like

    def test_tree_like_fraction_range(self):
        g = nx.random_regular_graph(3, 30, seed=1)
        fraction = gi.tree_like_fraction(g, 2)
        assert 0.0 <= fraction <= 1.0

    def test_high_girth_construction(self):
        g = gi.high_girth_regular_graph(3, 60, min_girth=6, seed=2)
        assert all(d == 3 for _, d in g.degree())
        assert gi.girth(g) >= 6


class TestTransforms:
    def test_line_graph_of_path(self):
        h, vertex_to_edge = tr.line_graph(nx.path_graph(5))
        assert h.number_of_nodes() == 4
        assert h.number_of_edges() == 3
        assert set(vertex_to_edge.values()) == {(0, 1), (1, 2), (2, 3), (3, 4)}

    def test_line_graph_of_star_is_clique(self):
        h, _ = tr.line_graph(nx.star_graph(4))
        assert h.number_of_edges() == 6  # K4

    def test_matching_in_g_is_mis_in_line_graph(self):
        from repro.algorithms.matching.sequential import sequential_greedy_matching
        from repro.core.problems import is_maximal_independent_set

        g = nx.gnp_random_graph(20, 0.2, seed=9)
        matching = sequential_greedy_matching(g)
        h, vertex_to_edge = tr.line_graph(g)
        selected = {i: vertex_to_edge[i] in matching for i in h.nodes()}
        assert is_maximal_independent_set(h, selected)

    def test_power_graph_of_path(self):
        p2 = tr.power_graph(nx.path_graph(5), 2)
        assert p2.has_edge(0, 2) and not p2.has_edge(0, 3)

    def test_power_graph_k_one_is_identity(self):
        g = nx.gnp_random_graph(15, 0.2, seed=10)
        p1 = tr.power_graph(g, 1)
        assert set(p1.edges()) == {tuple(sorted(e)) for e in g.edges()}

    def test_power_graph_invalid_k(self):
        with pytest.raises(ValueError):
            tr.power_graph(nx.path_graph(3), 0)

    def test_disjoint_union_sizes(self):
        union, map_a, map_b = tr.disjoint_union(nx.path_graph(3), nx.cycle_graph(4))
        assert union.number_of_nodes() == 7
        assert union.number_of_edges() == 6
        assert set(map_a.values()).isdisjoint(set(map_b.values()))

    def test_two_copies_with_perfect_matching(self):
        g = nx.cycle_graph(6)
        union, map_a, map_b, matching = tr.two_copies_with_perfect_matching(g)
        assert union.number_of_nodes() == 12
        assert len(matching) == 6
        assert union.number_of_edges() == 2 * 6 + 6
        for a, b in matching:
            assert union.has_edge(a, b)

    def test_two_copies_custom_partner(self):
        g = nx.path_graph(4)
        union, _, _, matching = tr.two_copies_with_perfect_matching(g, partner=lambda v: (v + 1) % 4)
        assert len(matching) == 4

    def test_two_copies_partner_must_be_vertex(self):
        with pytest.raises(ValueError):
            tr.two_copies_with_perfect_matching(nx.path_graph(3), partner=lambda v: v + 10)


class TestPropertyBased:
    @given(st.integers(min_value=2, max_value=30), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=25, deadline=None)
    def test_bounded_degree_respects_bound(self, max_degree, seed):
        g = gen.bounded_degree_graph(40, max_degree, seed=seed)
        assert max((d for _, d in g.degree()), default=0) <= max_degree

    @given(st.integers(min_value=3, max_value=25))
    @settings(max_examples=20, deadline=None)
    def test_line_graph_degree_sum_identity(self, n):
        g = nx.cycle_graph(n)
        h, _ = tr.line_graph(g)
        # For a cycle the line graph is again a cycle of the same length.
        assert h.number_of_nodes() == n and h.number_of_edges() == n

    @given(st.integers(min_value=2, max_value=20), st.integers(min_value=1, max_value=3))
    @settings(max_examples=20, deadline=None)
    def test_power_graph_contains_original(self, n, k):
        g = nx.path_graph(n)
        pk = tr.power_graph(g, k)
        for u, v in g.edges():
            assert pk.has_edge(u, v)
