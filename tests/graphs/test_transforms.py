"""Tests for ``repro.graphs.transforms``: line graphs, powers, unions, and
the two-copies-plus-perfect-matching operation of Theorem 17, including
round-trips through small :class:`Network` objects."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.graphs import transforms
from repro.local.network import Network


class TestLineGraph:
    def test_path_line_graph_is_shorter_path(self):
        h, vertex_to_edge = transforms.line_graph(nx.path_graph(5))
        assert h.number_of_nodes() == 4
        assert nx.is_isomorphic(h, nx.path_graph(4))
        assert sorted(vertex_to_edge.values()) == [(0, 1), (1, 2), (2, 3), (3, 4)]

    def test_cycle_line_graph_is_cycle(self):
        h, _ = transforms.line_graph(nx.cycle_graph(6))
        assert nx.is_isomorphic(h, nx.cycle_graph(6))

    def test_star_line_graph_is_complete(self):
        h, _ = transforms.line_graph(nx.star_graph(4))
        assert nx.is_isomorphic(h, nx.complete_graph(4))

    def test_matches_networkx_line_graph(self):
        g = nx.gnp_random_graph(15, 0.3, seed=2)
        h, vertex_to_edge = transforms.line_graph(g)
        assert nx.is_isomorphic(h, nx.line_graph(g))
        # The vertex ↔ edge mapping is a bijection onto the original edges.
        assert sorted(vertex_to_edge.values()) == sorted(tuple(sorted(e)) for e in g.edges())

    def test_mis_of_line_graph_is_matching(self):
        """The Section 1.1 correspondence on a concrete graph."""
        g = nx.cycle_graph(7)
        h, vertex_to_edge = transforms.line_graph(g)
        mis = nx.maximal_independent_set(h, seed=3)
        matching = [vertex_to_edge[i] for i in mis]
        endpoints = [v for e in matching for v in e]
        assert len(endpoints) == len(set(endpoints))  # no shared endpoint

    def test_round_trip_through_network(self):
        g = nx.cycle_graph(5)
        h, _ = transforms.line_graph(g)
        network = Network.from_graph(h)
        assert network.n == 5
        assert network.m == h.number_of_edges()
        assert nx.is_isomorphic(network.to_networkx(), h)


class TestPowerGraph:
    def test_square_of_path(self):
        p2 = transforms.power_graph(nx.path_graph(5), 2)
        expected = {(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (2, 4), (3, 4)}
        assert {tuple(sorted(e)) for e in p2.edges()} == expected

    def test_k_at_least_diameter_gives_complete(self):
        g = nx.path_graph(6)
        p = transforms.power_graph(g, 5)
        assert nx.is_isomorphic(p, nx.complete_graph(6))

    def test_power_one_is_identity(self):
        g = nx.gnp_random_graph(12, 0.25, seed=4)
        p1 = transforms.power_graph(g, 1)
        assert set(map(tuple, map(sorted, p1.edges()))) == set(
            map(tuple, map(sorted, g.edges()))
        )

    def test_invalid_k_raises(self):
        with pytest.raises(ValueError):
            transforms.power_graph(nx.path_graph(3), 0)


class TestDisjointUnion:
    def test_sizes_and_maps(self):
        a, b = nx.cycle_graph(4), nx.path_graph(3)
        union, map_a, map_b = transforms.disjoint_union(a, b)
        assert union.number_of_nodes() == 7
        assert union.number_of_edges() == a.number_of_edges() + b.number_of_edges()
        assert set(map_a.values()) | set(map_b.values()) == set(range(7))
        assert set(map_a.values()).isdisjoint(set(map_b.values()))

    def test_components_preserved(self):
        union, _, _ = transforms.disjoint_union(nx.cycle_graph(4), nx.cycle_graph(5))
        components = sorted(len(c) for c in nx.connected_components(union))
        assert components == [4, 5]

    def test_round_trip_through_network(self):
        union, _, _ = transforms.disjoint_union(nx.cycle_graph(3), nx.path_graph(4))
        network = Network.from_graph(union)
        assert network.n == 7
        assert network.m == union.number_of_edges()


class TestTwoCopiesWithPerfectMatching:
    def test_identity_partner(self):
        g = nx.cycle_graph(5)
        union, map_a, map_b, matching = transforms.two_copies_with_perfect_matching(g)
        assert union.number_of_nodes() == 10
        assert union.number_of_edges() == 2 * g.number_of_edges() + 5
        assert len(matching) == 5
        matched = [v for e in matching for v in e]
        assert sorted(matched) == list(range(10))  # perfect: every vertex once
        for v in g.nodes():
            e = tuple(sorted((map_a[v], map_b[v])))
            assert e in {tuple(sorted(x)) for x in matching}

    def test_permutation_partner(self):
        g = nx.path_graph(4)
        partner = lambda v: (v + 1) % 4  # noqa: E731 - a bijection
        union, map_a, map_b, matching = transforms.two_copies_with_perfect_matching(g, partner)
        matched = [v for e in matching for v in e]
        assert sorted(matched) == list(range(8))
        assert tuple(sorted((map_a[0], map_b[1]))) in {tuple(sorted(e)) for e in matching}

    def test_non_bijective_partner_raises(self):
        with pytest.raises(ValueError):
            transforms.two_copies_with_perfect_matching(nx.path_graph(3), lambda v: 0)

    def test_partner_outside_graph_raises(self):
        with pytest.raises(ValueError):
            transforms.two_copies_with_perfect_matching(nx.path_graph(3), lambda v: v + 10)

    def test_matching_is_valid_on_network(self):
        """The construction's matching validates as a matching of the union."""
        from repro.core import problems

        g = nx.cycle_graph(4)
        union, _, _, matching = transforms.two_copies_with_perfect_matching(g)
        network = Network.from_graph(union)
        edge_outputs = {e: (e in set(matching)) for e in network.edges}
        assert problems.csr_is_matching(network, [edge_outputs[e] for e in network.edges])
