"""Direct edge-list generators must equal their networkx counterparts.

Every ``*_edges`` generator in :mod:`repro.graphs.generators` promises to be
a **stream-exact** twin of its networkx-backed sibling: for a matching seed
it emits exactly the same edge set (it replays the counterpart's RNG
consumption call for call), just without ever building a ``networkx.Graph``.
These tests pin that contract for the deterministic families and, via
hypothesis-driven seeds, for the randomized ones.
"""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import generators as gen
from repro.local.network import Network


def _canon(edges):
    return {(u, v) if u < v else (v, u) for u, v in edges}


def _assert_twin(edge_list, graph):
    n, edges = edge_list
    assert n == graph.number_of_nodes()
    assert len(edges) == graph.number_of_edges()
    assert _canon(edges) == _canon(graph.edges())


class TestDeterministicFamilies:
    @pytest.mark.parametrize("n", [3, 4, 5, 12, 100])
    def test_cycle(self, n):
        _assert_twin(gen.cycle_edges(n), gen.cycle_graph(n))

    @pytest.mark.parametrize("n", [1, 2, 5, 40])
    def test_path(self, n):
        _assert_twin(gen.path_edges(n), gen.path_graph(n))

    @pytest.mark.parametrize("n", [1, 2, 3, 9])
    def test_complete(self, n):
        _assert_twin(gen.complete_edges(n), gen.complete_graph(n))

    @pytest.mark.parametrize("leaves", [1, 2, 7, 20])
    def test_star(self, leaves):
        _assert_twin(gen.star_edges(leaves), gen.star_graph(leaves))

    @pytest.mark.parametrize("rows,cols", [(1, 1), (1, 6), (6, 1), (3, 4), (5, 5)])
    def test_grid(self, rows, cols):
        _assert_twin(gen.grid_edges(rows, cols), gen.grid_graph(rows, cols))

    def test_validation_errors_match(self):
        for direct, legacy, args in [
            (gen.cycle_edges, gen.cycle_graph, (2,)),
            (gen.path_edges, gen.path_graph, (0,)),
            (gen.complete_edges, gen.complete_graph, (0,)),
            (gen.star_edges, gen.star_graph, (0,)),
            (gen.grid_edges, gen.grid_graph, (0, 3)),
        ]:
            with pytest.raises(ValueError):
                direct(*args)
            with pytest.raises(ValueError):
                legacy(*args)


class TestRandomizedFamilies:
    @pytest.mark.parametrize("degree,n", [(3, 10), (4, 20), (5, 16), (2, 9)])
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_random_regular_stream_exact(self, degree, n, seed):
        _assert_twin(
            gen.random_regular_edges(degree, n, seed=seed),
            gen.random_regular_graph(degree, n, seed=seed),
        )

    def test_random_regular_degree_zero_and_errors(self):
        assert gen.random_regular_edges(0, 5) == (5, [])
        with pytest.raises(ValueError):
            gen.random_regular_edges(3, 9)
        with pytest.raises(ValueError):
            gen.random_regular_edges(5, 4)

    @pytest.mark.parametrize("n,deg", [(1, 3.0), (2, 1.0), (30, 4.0), (60, 0.0), (5, 100.0)])
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_erdos_renyi_stream_exact(self, n, deg, seed):
        _assert_twin(
            gen.erdos_renyi_edges(n, deg, seed=seed),
            gen.erdos_renyi_graph(n, deg, seed=seed),
        )

    @pytest.mark.parametrize("n,min_degree", [(10, 3), (11, 3), (21, 3), (14, 4), (15, 3)])
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_min_degree_stream_exact(self, n, min_degree, seed):
        edge_list = gen.min_degree_edges(n, min_degree, seed=seed)
        _assert_twin(edge_list, gen.min_degree_graph(n, min_degree, seed=seed))
        _, edges = edge_list
        degrees = [0] * n
        for u, v in edges:
            degrees[u] += 1
            degrees[v] += 1
        assert min(degrees) >= min_degree


class TestNetworkIntegration:
    def test_from_edge_list_equals_from_graph(self):
        """A graph and its (n, edges) twin yield identical networks."""
        import random

        for scheme in ("sequential", "permuted", "random", "adversarial"):
            n, edges = gen.random_regular_edges(4, 30, seed=2)
            direct = Network.from_edge_list(
                n, edges, id_scheme=scheme, rng=random.Random(5)
            )
            via_nx = Network.from_graph(
                gen.random_regular_graph(4, 30, seed=2),
                id_scheme=scheme,
                rng=random.Random(5),
            )
            assert direct.n == via_nx.n and direct.m == via_nx.m
            assert direct.edges == via_nx.edges
            assert direct.identifiers == via_nx.identifiers

    def test_network_from_accepts_all_workload_forms(self):
        from repro.analysis.sweep import network_from

        n, edges = gen.cycle_edges(12)
        from_pair = network_from((n, edges), seed=3)
        from_graph = network_from(gen.cycle_graph(12), seed=3)
        assert from_pair.edges == from_graph.edges
        assert from_pair.identifiers == from_graph.identifiers
        ready = Network.from_edges(n, edges)
        assert network_from(ready, seed=3) is ready

    def test_to_networkx_is_cached(self):
        net = Network.from_edges(*gen.cycle_edges(8))
        assert net.to_networkx() is net.to_networkx()
        exported = net.to_networkx()
        assert exported.number_of_nodes() == 8
        assert _canon(exported.edges()) == _canon(net.edges)


class TestAsArraysTwins:
    """``as_arrays=True`` must emit the exact same edge list as tuple mode.

    The deterministic families build their arrays natively in numpy, so this
    pins that the vectorised constructions reproduce the Python loops
    element for element (same order, not just the same set); the randomized
    families replay the same RNG stream either way.
    """

    CASES = [
        ("cycle_edges", (3,)),
        ("cycle_edges", (17,)),
        ("path_edges", (1,)),
        ("path_edges", (23,)),
        ("complete_edges", (1,)),
        ("complete_edges", (9,)),
        ("star_edges", (1,)),
        ("star_edges", (12,)),
        ("grid_edges", (1, 1)),
        ("grid_edges", (1, 7)),
        ("grid_edges", (5, 1)),
        ("grid_edges", (4, 6)),
        ("random_regular_edges", (3, 18, 4)),
        ("random_regular_edges", (0, 5, 0)),
        ("erdos_renyi_edges", (25, 4.0, 2)),
        ("erdos_renyi_edges", (1, 3.0, 0)),
        ("erdos_renyi_edges", (4, 0.0, 0)),
        ("erdos_renyi_edges", (4, 99.0, 0)),
        ("min_degree_edges", (11, 3, 5)),
        ("min_degree_edges", (12, 3, 5)),
    ]

    @pytest.mark.parametrize("name,args", CASES)
    def test_array_twin_matches_tuple_twin_exactly(self, name, args):
        from repro.graphs.edgelist import EdgeArrays

        generator = getattr(gen, name)
        n, edges = generator(*args)
        arrays = generator(*args, as_arrays=True)
        assert isinstance(arrays, EdgeArrays)
        assert arrays.n == n
        assert arrays.as_pairs() == [tuple(e) for e in edges]

    def test_provenance_metadata_names_the_family(self):
        assert gen.cycle_edges(5, as_arrays=True).meta["family"] == "cycle"
        assert gen.grid_edges(2, 3, as_arrays=True).meta == {
            "family": "grid",
            "rows": 2,
            "cols": 3,
        }
        regular = gen.random_regular_edges(4, 10, seed=3, as_arrays=True)
        assert regular.meta["family"] == "random_regular"
        assert regular.meta["seed"] == 3
        assert gen.min_degree_edges(11, 3, seed=5, as_arrays=True).meta["family"] == "min_degree"

    def test_network_from_edge_arrays_equals_tuple_network(self):
        arrays = gen.grid_edges(6, 5, as_arrays=True)
        n, edges = gen.grid_edges(6, 5)
        a = Network.from_edge_arrays(arrays)
        b = Network.from_edge_list(n, edges)
        assert a.edges == b.edges
        assert [a.neighbors(v) for v in a.vertices] == [b.neighbors(v) for v in b.vertices]

    def test_min_degree_even_parity_keeps_min_degree_provenance(self):
        arrays = gen.min_degree_edges(12, 3, seed=5, as_arrays=True)
        assert arrays.meta["family"] == "min_degree"
        assert arrays.meta["min_degree"] == 3 and arrays.meta["seed"] == 5
        n, edges = gen.min_degree_edges(12, 3, seed=5)
        assert arrays.as_pairs() == [tuple(e) for e in edges]
