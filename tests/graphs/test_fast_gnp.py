"""Statistical tests for the geometric-skip Erdős–Rényi generator.

``fast_gnp_edges`` deliberately breaks the repo's stream-exactness rule: it
samples the same G(n, p) distribution as the quadratic Gilbert twin
(``erdos_renyi_edges``) through its own documented numpy-PCG64 seed
schedule, so no seed pairing makes the two produce the same edge list.
What can — and must — be pinned instead:

* **seed determinism**: the same ``(n, p, seed)`` triple always yields the
  same edge list, different seeds yield different lists;
* **structural sanity**: canonical ``u < v`` edges, no duplicates, all
  endpoints in range;
* **edge counts** within Chernoff-style bounds of ``n·(n−1)/2·p`` at
  n ∈ {10³, 10⁴} (the fixed seeds make these assertions deterministic — the
  bound documents how far a regression would have to drift to trip them);
* **degree distribution** agreement with the Gilbert reference via a
  fixed-seed two-sample chi-square on pooled degree histograms.

The chi-square statistic is computed by hand (no scipy dependency): with
both samples drawn from the same Binomial(n−1, p) degree law, the statistic
is asymptotically χ²(df) and the asserted threshold is far above the 99.9 %
quantile for the degrees of freedom in play.
"""

from __future__ import annotations

import math
from collections import Counter

import pytest

from repro.graphs import generators as gen
from repro.local.network import Network


def _degrees(n: int, edges) -> Counter:
    counts = Counter()
    for u, v in edges:
        counts[u] += 1
        counts[v] += 1
    histogram = Counter(counts.values())
    histogram[0] = n - len(counts)
    return histogram


class TestDeterminismAndShape:
    def test_same_seed_same_edges(self):
        for seed in (0, 1, 17):
            a = gen.fast_gnp_edges(2000, 0.004, seed=seed)
            b = gen.fast_gnp_edges(2000, 0.004, seed=seed)
            assert a == b

    def test_different_seeds_differ(self):
        _, a = gen.fast_gnp_edges(2000, 0.004, seed=0)
        _, b = gen.fast_gnp_edges(2000, 0.004, seed=1)
        assert a != b

    def test_edges_canonical_unique_in_range(self):
        n, edges = gen.fast_gnp_edges(3000, 0.003, seed=5)
        assert n == 3000
        assert all(0 <= u < v < n for u, v in edges)
        assert len(set(edges)) == len(edges)

    def test_degenerate_parameters(self):
        assert gen.fast_gnp_edges(1, 0.5) == (1, [])
        assert gen.fast_gnp_edges(7, 0.0) == (7, [])
        n, edges = gen.fast_gnp_edges(4, 1.0)
        assert (n, sorted(edges)) == gen.complete_edges(4)
        with pytest.raises(ValueError):
            gen.fast_gnp_edges(0, 0.5)
        with pytest.raises(ValueError):
            gen.fast_gnp_edges(10, 1.5)

    def test_feeds_network_from_edge_list(self):
        n, edges = gen.fast_gnp_edges(500, 10 / 499, seed=3)
        network = Network.from_edge_list(n, edges)
        assert network.n == 500
        assert network.m == len(edges)
        # Sorted CSR rows double as a parallel-edge / self-loop audit.
        assert all(network.degree(v) >= 0 for v in network.vertices)


class TestEdgeCountChernoff:
    @pytest.mark.parametrize("n", [1_000, 10_000])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_edge_count_within_chernoff_band(self, n, seed):
        """|m − μ| ≤ 6√μ with μ = n(n−1)/2 · p.

        A Chernoff/Bernstein bound puts the probability of a 6σ deviation of
        a Binomial(n(n−1)/2, p) count below 1e-8 per draw; the fixed seeds
        make the test deterministic, and a generator regression (wrong gap
        law, off-by-one in the skip walk) shifts μ by Θ(μ) ≫ 6√μ.
        """
        p = 10.0 / (n - 1)
        _, edges = gen.fast_gnp_edges(n, p, seed=seed)
        mu = n * (n - 1) / 2 * p
        assert abs(len(edges) - mu) <= 6.0 * math.sqrt(mu)

    def test_gilbert_reference_same_band(self):
        """The stream-exact Gilbert twin lands in the same band (sanity)."""
        n = 1_000
        _, edges = gen.erdos_renyi_edges(n, 10.0, seed=0)
        mu = n * 10.0 / 2
        assert abs(len(edges) - mu) <= 6.0 * math.sqrt(mu)


class TestDegreeDistributionChiSquare:
    def test_degree_histogram_matches_gilbert_reference(self):
        """Fixed-seed two-sample chi-square on pooled degree histograms.

        Both generators draw G(n, p) with expected degree 8; degrees are
        Binomial(n−1, p).  Histogram cells below an expected pooled count of
        ~8 are merged into the tails, the standard two-sample statistic

            X² = Σ_cells (√(N₂/N₁)·a_i − √(N₁/N₂)·b_i)² / (a_i + b_i)

        is computed, and asserted far below the blow-up a distributional
        regression (e.g. sampling gaps with the wrong success probability)
        produces.  With ~15 cells the 99.9 % quantile of χ² is ≈ 37.7; the
        fixed seeds currently give a statistic well under 20.
        """
        n = 4_000
        expected_degree = 8.0
        p = expected_degree / (n - 1)
        _, fast_edges = gen.fast_gnp_edges(n, p, seed=12)
        _, gilbert_edges = gen.erdos_renyi_edges(n, expected_degree, seed=12)

        fast_hist = _degrees(n, fast_edges)
        gilbert_hist = _degrees(n, gilbert_edges)

        # Merge sparse bins: degrees 0..2 and 15+ pool into tail cells so
        # every cell's pooled expected count is comfortably ≥ 8.
        def _binned(hist: Counter) -> list:
            cells = [0] * 14
            for degree, count in hist.items():
                cells[min(max(degree - 2, 0), 13)] += count
            return cells

        a = _binned(fast_hist)
        b = _binned(gilbert_hist)
        total_a = sum(a)
        total_b = sum(b)
        assert total_a == total_b == n

        statistic = 0.0
        df = 0
        for ai, bi in zip(a, b):
            if ai + bi == 0:
                continue
            df += 1
            scaled = math.sqrt(total_b / total_a) * ai - math.sqrt(total_a / total_b) * bi
            statistic += scaled * scaled / (ai + bi)
        assert df >= 10
        # 99.9% quantile of chi-square with df ≤ 14 is < 38; a wrong gap law
        # sends the statistic into the hundreds.
        assert statistic < 38.0, f"chi-square {statistic:.1f} over {df} cells"


class TestNativeArrayMode:
    """``as_arrays=True`` hands the skip walk's numpy arrays straight through."""

    def test_array_mode_equals_tuple_mode_exactly(self):
        for n, p, seed in [(500, 0.02, 1), (1000, 0.004, 9), (50, 0.5, 3)]:
            n_t, edges = gen.fast_gnp_edges(n, p, seed=seed)
            arrays = gen.fast_gnp_edges(n, p, seed=seed, as_arrays=True)
            assert arrays.n == n_t == n
            assert arrays.as_pairs() == [tuple(e) for e in edges]
            assert arrays.meta == {"family": "fast_gnp", "n": n, "p": p, "seed": seed}

    def test_degenerate_parameters_in_array_mode(self):
        assert gen.fast_gnp_edges(1, 0.5, as_arrays=True).m == 0
        assert gen.fast_gnp_edges(10, 0.0, as_arrays=True).m == 0
        full = gen.fast_gnp_edges(6, 1.0, as_arrays=True)
        assert full.m == 15  # K_6, delegated to complete_edges

    def test_arrays_feed_the_numpy_csr_network_build(self):
        arrays = gen.fast_gnp_edges(800, 0.01, seed=4, as_arrays=True)
        via_arrays = Network.from_edge_arrays(arrays)
        n, edges = gen.fast_gnp_edges(800, 0.01, seed=4)
        via_tuples = Network.from_edge_list(n, edges)
        assert via_arrays.edges == via_tuples.edges
        assert via_arrays.identifiers == via_tuples.identifiers
        assert [via_arrays.neighbors(v) for v in range(20)] == [
            via_tuples.neighbors(v) for v in range(20)
        ]

    def test_dense_delegation_keeps_fast_gnp_provenance(self):
        full = gen.fast_gnp_edges(6, 1.0, seed=3, as_arrays=True)
        assert full.m == 15
        assert full.meta["family"] == "fast_gnp"
        assert full.meta["p"] == 1.0 and full.meta["seed"] == 3
