"""Tests for ``repro.graphs.girth`` (previously the only untested module
alongside ``transforms``): exact girth, per-vertex shortest cycles,
tree-like views, and the high-girth construction."""

from __future__ import annotations

import math

import networkx as nx
import pytest

from repro.graphs import generators as gen
from repro.graphs import girth as girth_mod


class TestGirth:
    @pytest.mark.parametrize("n", [3, 4, 7, 12])
    def test_cycle_girth_is_n(self, n):
        assert girth_mod.girth(gen.cycle_graph(n)) == n

    def test_tree_girth_is_infinite(self):
        assert girth_mod.girth(nx.balanced_tree(2, 3)) == math.inf
        assert girth_mod.girth(nx.path_graph(10)) == math.inf

    def test_grid_girth_is_four(self):
        assert girth_mod.girth(gen.grid_graph(4, 5)) == 4

    def test_complete_graph_girth_is_three(self):
        assert girth_mod.girth(nx.complete_graph(5)) == 3

    def test_two_cycles_take_the_shorter(self):
        g = nx.disjoint_union(nx.cycle_graph(9), nx.cycle_graph(5))
        assert girth_mod.girth(g) == 5

    def test_chorded_cycle(self):
        """C_8 plus the chord {0, 3} creates a 4-cycle."""
        g = nx.cycle_graph(8)
        g.add_edge(0, 3)
        assert girth_mod.girth(g) == 4

    def test_empty_and_isolated(self):
        assert girth_mod.girth(nx.empty_graph(4)) == math.inf


class TestShortestCycleThrough:
    def test_on_cycle_every_vertex_sees_n(self):
        g = nx.cycle_graph(6)
        for v in g.nodes():
            assert girth_mod.shortest_cycle_through(g, v) == 6

    def test_vertex_off_the_cycle(self):
        """A pendant path hanging off a triangle: its tip lies on no cycle."""
        g = nx.cycle_graph(3)
        g.add_edge(0, 3)
        g.add_edge(3, 4)
        assert girth_mod.shortest_cycle_through(g, 0) == 3
        assert girth_mod.shortest_cycle_through(g, 4) == math.inf

    def test_two_nested_cycles(self):
        """Vertex on the long cycle only reports the long cycle."""
        g = nx.cycle_graph(10)
        g.add_edge(0, 3)  # creates a 4-cycle 0-1-2-3
        assert girth_mod.shortest_cycle_through(g, 1) == 4
        assert girth_mod.shortest_cycle_through(g, 6) == 8  # 3-4-5-6-7-8-9-0 via chord


class TestTreeLikeViews:
    def test_tree_views_always_tree_like(self):
        g = nx.balanced_tree(2, 4)
        for radius in (1, 2, 5):
            assert girth_mod.nodes_with_tree_like_view(g, radius) == set(g.nodes())
            assert girth_mod.tree_like_fraction(g, radius) == 1.0

    def test_cycle_views_flip_at_half_girth(self):
        g = nx.cycle_graph(12)
        assert girth_mod.tree_like_fraction(g, 5) == 1.0
        assert girth_mod.tree_like_fraction(g, 6) == 0.0

    def test_has_cycle_within_distance_localises(self):
        """Triangle with a long tail: only vertices near the triangle see it."""
        g = nx.cycle_graph(3)
        prev = 0
        for i in range(3, 9):
            g.add_edge(prev, i)
            prev = i
        # The radius-r view contains the edges incident to vertices at
        # distance ≤ r−1: a triangle vertex sees the closing edge only at
        # radius 2, not radius 1.
        assert not girth_mod.has_cycle_within_distance(g, 0, 1)
        assert girth_mod.has_cycle_within_distance(g, 0, 2)
        assert not girth_mod.has_cycle_within_distance(g, 8, 3)
        # The triangle's far vertices sit at distance 7 from the tail tip,
        # and an edge between two radius-boundary vertices is not part of
        # the radius-r view — the cycle only becomes visible at radius 8.
        assert not girth_mod.has_cycle_within_distance(g, 8, 7)
        assert girth_mod.has_cycle_within_distance(g, 8, 8)

    def test_empty_graph_fraction_is_one(self):
        assert girth_mod.tree_like_fraction(nx.empty_graph(0), 2) == 1.0


class TestHighGirthConstruction:
    def test_reaches_requested_girth(self):
        g = girth_mod.high_girth_regular_graph(3, 60, min_girth=5, seed=1)
        assert all(d == 3 for _, d in g.degree())
        assert girth_mod.girth(g) >= 5

    def test_min_girth_below_three_is_plain_regular(self):
        g = girth_mod.high_girth_regular_graph(3, 20, min_girth=2, seed=0)
        assert all(d == 3 for _, d in g.degree())

    def test_impossible_girth_raises(self):
        with pytest.raises(RuntimeError):
            girth_mod.high_girth_regular_graph(4, 12, min_girth=12, seed=0, max_attempts=30)
