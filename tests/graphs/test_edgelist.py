"""Tests for the EdgeArrays interchange type (repro.graphs.edgelist)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.edgelist import EdgeArrays, as_edge_arrays


class TestConstruction:
    def test_basic_construction_coerces_to_int64(self):
        arrays = EdgeArrays(n=4, src=[0, 1, 2], dst=[1, 2, 3])
        assert arrays.src.dtype == np.int64
        assert arrays.dst.dtype == np.int64
        assert arrays.n == 4
        assert arrays.m == 3
        assert len(arrays) == 3

    def test_arrays_are_frozen(self):
        arrays = EdgeArrays(n=3, src=[0, 1], dst=[1, 2])
        assert not arrays.src.flags.writeable
        assert not arrays.dst.flags.writeable
        with pytest.raises(ValueError):
            arrays.src[0] = 2

    def test_caller_buffer_is_not_aliased_when_writable(self):
        src = np.array([0, 1], dtype=np.int64)
        dst = np.array([1, 2], dtype=np.int64)
        arrays = EdgeArrays(n=3, src=src, dst=dst)
        src[0] = 2  # caller's buffer stays writable and independent
        assert arrays.src[0] == 0

    def test_frozen_input_arrays_are_shared_not_copied(self):
        src = np.array([0, 1], dtype=np.int64)
        src.setflags(write=False)
        dst = np.array([1, 2], dtype=np.int64)
        dst.setflags(write=False)
        arrays = EdgeArrays(n=3, src=src, dst=dst)
        assert arrays.src is src
        assert arrays.dst is dst

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            EdgeArrays(n=3, src=[0, 1], dst=[1])

    def test_two_dimensional_input_rejected(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            EdgeArrays(n=3, src=[[0, 1]], dst=[[1, 2]])

    def test_out_of_range_endpoints_rejected(self):
        with pytest.raises(ValueError, match="outside 0"):
            EdgeArrays(n=3, src=[0], dst=[3])
        with pytest.raises(ValueError, match="outside 0"):
            EdgeArrays(n=3, src=[-1], dst=[1])

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            EdgeArrays(n=-1, src=[], dst=[])

    def test_empty_edge_list(self):
        arrays = EdgeArrays(n=5, src=[], dst=[])
        assert arrays.m == 0
        assert arrays.as_pairs() == []


class TestCompatWrappers:
    def test_from_pairs_round_trip(self):
        pairs = [(0, 1), (2, 1), (3, 0)]
        arrays = EdgeArrays.from_pairs(4, pairs)
        assert arrays.as_pairs() == pairs
        n, edges = arrays.as_edge_list()
        assert n == 4 and edges == pairs

    def test_from_pairs_empty(self):
        arrays = EdgeArrays.from_pairs(2, [])
        assert arrays.n == 2 and arrays.m == 0

    def test_from_pairs_rejects_non_pairs(self):
        with pytest.raises(ValueError, match="pairs"):
            EdgeArrays.from_pairs(3, [(0, 1, 2)])

    def test_meta_provenance_and_with_meta(self):
        arrays = EdgeArrays.from_pairs(3, [(0, 1)], meta={"family": "test", "seed": 3})
        assert arrays.meta["family"] == "test"
        tagged = arrays.with_meta(trial=7)
        assert tagged.meta == {"family": "test", "seed": 3, "trial": 7}
        assert tagged.src is arrays.src  # arrays shared, not copied
        assert arrays.meta == {"family": "test", "seed": 3}  # original untouched


class TestAsEdgeArrays:
    def test_identity_on_edge_arrays(self):
        arrays = EdgeArrays(n=3, src=[0], dst=[1])
        assert as_edge_arrays(arrays) is arrays

    def test_pair_coercion(self):
        arrays = as_edge_arrays((3, [(0, 1), (1, 2)]))
        assert isinstance(arrays, EdgeArrays)
        assert arrays.n == 3
        assert arrays.as_pairs() == [(0, 1), (1, 2)]

    def test_networkx_like_coercion(self):
        nx = pytest.importorskip("networkx")
        graph = nx.path_graph(4)
        arrays = as_edge_arrays(graph)
        assert arrays.n == 4
        assert sorted(tuple(sorted(e)) for e in arrays.as_pairs()) == [
            (0, 1),
            (1, 2),
            (2, 3),
        ]

    def test_unknown_source_rejected(self):
        with pytest.raises(TypeError, match="edge-array graph source"):
            as_edge_arrays(42)


class TestAliasSafety:
    def test_read_only_view_over_writable_base_is_copied(self):
        base = np.arange(10, dtype=np.int64)
        view = base[:3]
        view.setflags(write=False)
        arrays = EdgeArrays(n=10, src=view, dst=view)
        base[0] = 9  # mutating the base must not reach the frozen arrays
        assert arrays.src[0] == 0 and arrays.dst[0] == 0

    def test_float_arrays_are_rejected_not_truncated(self):
        with pytest.raises(ValueError, match="integer array"):
            EdgeArrays(n=3, src=np.array([0.9]), dst=np.array([1.2]))

    def test_from_pairs_rejects_float_endpoints(self):
        with pytest.raises(ValueError, match="integer endpoints"):
            EdgeArrays.from_pairs(3, [(0.9, 1.2)])
