"""Tests for the sqlite result store and its content-addressed graph cache.

The central invariant: the service is a persistence layer, never a results
layer.  Measurements read back from the store are bit-identical to what the
in-process ``sweep()`` computes, and a cache-hit network is indistinguishable
from the freshly built original.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import sweep
from repro.service.scheduler import Scheduler
from repro.service.specs import SweepSpec
from repro.service.store import (
    RESULT_STORE_SCHEMA,
    ResultStore,
    _network_csr_arrays,
)


def make_spec(**overrides):
    settings = dict(
        parameter="n",
        values=(8, 10),
        family="cycle",
        algorithms=("luby_mis",),
        trials=2,
        seed=3,
    )
    settings.update(overrides)
    return SweepSpec(**settings)


def run_one(db_path, spec):
    """Submit + drain one job; returns its id."""
    scheduler = Scheduler(str(db_path), poll_s=0.02, backoff_base_s=0.01)
    try:
        job_id = scheduler.queue.submit(spec)
        scheduler.drain()
        assert scheduler.queue.job(job_id).status == "done"
    finally:
        scheduler.close()
    return job_id


@pytest.fixture
def db_path(tmp_path):
    return str(tmp_path / "service.db")


class TestSchema:
    def test_schema_version_is_stamped(self, db_path):
        with ResultStore(db_path) as store:
            row = store._db.execute(
                "SELECT value FROM meta WHERE key = 'schema'"
            ).fetchone()
            assert row["value"] == RESULT_STORE_SCHEMA

    def test_reopening_an_existing_store_is_idempotent(self, db_path):
        ResultStore(db_path).close()
        with ResultStore(db_path) as store:
            assert store.list_experiments() == []


class TestBitIdentity:
    def test_stored_points_match_the_in_process_sweep_exactly(self, db_path):
        spec = make_spec()
        job_id = run_one(db_path, spec)
        live = sweep(**spec.sweep_kwargs())
        with ResultStore(db_path) as store:
            stored = store.points(job_id)
        assert len(stored) == len(live)
        for row, point in zip(stored, live):
            assert row["value"] == point.value
            assert row["algorithm"] == point.measurement.algorithm
            # Full float64 precision, field for field — not the rounded
            # ``as_dict`` presentation form.
            live_fields = {
                key: list(value) if isinstance(value, tuple) else value
                for key, value in point.measurement.__dict__.items()
            }
            assert row["measurement"] == live_fields

    def test_stored_cells_carry_exact_completion_times(self, db_path):
        spec = make_spec(values=(8,), trials=1)
        job_id = run_one(db_path, spec)
        with ResultStore(db_path) as store:
            cells = store.cells(job_id)
        assert len(cells) == 1
        cell = cells[0]
        assert cell["status"] == "ok"
        assert cell["node_times"].dtype == np.int64
        assert len(cell["node_times"]) == 8
        assert len(cell["edge_times"]) == 8  # cycle: m == n
        assert int(cell["node_times"].max()) >= 1

    def test_record_results_is_idempotent(self, db_path):
        spec = make_spec(values=(8,), trials=1)
        job_id = run_one(db_path, spec)
        import repro.service.scheduler as sched

        with ResultStore(db_path) as store:
            before = store.points(job_id)
            # Re-record the same journal: rows replaced, not duplicated.
            header, rows = sched.sweepmod.read_checkpoint(
                sched.journal_path(db_path, job_id)
            )
            provenance = store.experiment(job_id)["provenance"]
            store.record_results(job_id, rows, provenance)
            assert store.points(job_id) == before
            assert len(store.cells(job_id)) == 1


class TestGraphCache:
    def test_network_round_trips_through_the_cache(self, db_path):
        from repro.analysis.sweep import network_from

        spec = make_spec()
        with ResultStore(db_path) as store:
            network = network_from(spec.graph_source(8), seed=spec.network_seed(0))
            key = spec.graph_key(0)
            assert store.cached_network(key) is None
            assert store.claim_graph_build(key, {"family": "cycle"})
            store.store_network(key, network)
            cached = store.cached_network(key)
        assert cached.n == network.n
        assert cached.m == network.m
        original = _network_csr_arrays(network)
        restored = _network_csr_arrays(cached)
        for field in original:
            assert np.array_equal(original[field], restored[field])
        assert cached.identifiers == network.identifiers
        assert cached.max_degree() == network.max_degree()

    def test_claim_is_exclusive_until_released(self, db_path):
        with ResultStore(db_path) as store:
            assert store.claim_graph_build("k1", {"r": 1})
            assert not store.claim_graph_build("k1", {"r": 1})
            store.release_graph_claim("k1")
            assert store.claim_graph_build("k1", {"r": 1})

    def test_network_for_counts_builds_and_hits(self, db_path):
        from repro.analysis.sweep import network_from

        spec = make_spec()
        key = spec.graph_key(0)
        builds = []

        def build():
            builds.append(1)
            return network_from(spec.graph_source(8), seed=spec.network_seed(0))

        with ResultStore(db_path) as store:
            first = store.network_for(key, {"r": 1}, build)
            second = store.network_for(key, {"r": 1}, build)
            stats = store.graph_cache_stats()
        assert len(builds) == 1
        assert first.n == second.n == 8
        assert len(stats) == 1
        assert stats[0]["builds"] == 1
        assert stats[0]["hits"] == 1

    def test_cache_hit_network_runs_identically(self, db_path):
        # A sweep fed cache-hit networks equals one that builds afresh.
        spec = make_spec()
        job_id = run_one(db_path, spec)  # populates the cache
        job_id_2 = run_one(db_path, spec.with_name("rerun"))  # pure cache hits
        with ResultStore(db_path) as store:
            assert store.points(job_id) == store.points(job_id_2)
            stats = store.graph_cache_stats()
        assert all(row["builds"] == 1 for row in stats)
        assert all(row["hits"] >= 1 for row in stats)
