"""Tests for the CLI (`python -m repro.service`) and the HTTP JSON API."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.service.api import ServiceAPI
from repro.service.cli import main
from repro.service.queue import JobQueue
from repro.service.scheduler import Scheduler
from repro.service.specs import SPEC_FORMAT, SweepSpec
from repro.service.store import RESULT_STORE_SCHEMA, ResultStore


def make_spec(**overrides):
    settings = dict(
        parameter="n",
        values=(8, 10),
        family="cycle",
        algorithms=("luby_mis",),
        trials=1,
        seed=3,
    )
    settings.update(overrides)
    return SweepSpec(**settings)


@pytest.fixture
def db_path(tmp_path):
    return str(tmp_path / "cli.db")


class TestCLI:
    def test_submit_run_status_results(self, db_path, capsys):
        code = main(
            [
                "--db", db_path, "submit",
                "--parameter", "n", "--values", "8,10",
                "--family", "cycle", "--algorithms", "luby_mis",
                "--trials", "1", "--seed", "3",
                "--run",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "submitted job 1" in out
        assert "status done" in out

        assert main(["--db", db_path, "status"]) == 0
        out = capsys.readouterr().out
        assert "done" in out
        assert "totals:" in out

        assert main(["--db", db_path, "results", "1"]) == 0
        out = capsys.readouterr().out
        assert "2 points" in out
        assert "n=8" in out and "n=10" in out

        assert main(["--db", db_path, "results", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "done"
        assert len(payload["points"]) == 2
        assert payload["provenance"]["seed_schedule"]["seed"] == 3

    def test_submit_from_spec_file(self, db_path, tmp_path, capsys):
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps(make_spec().to_dict()))
        assert main(["--db", db_path, "submit", "--spec", str(spec_file)]) == 0
        assert "submitted job 1" in capsys.readouterr().out
        with ResultStore(db_path) as store:
            job = JobQueue(store).job(1)
        assert job.status == "queued"
        assert job.spec == make_spec()

    def test_submit_requires_a_complete_inline_spec(self, db_path):
        with pytest.raises(SystemExit, match="--family"):
            main(["--db", db_path, "submit", "--parameter", "n",
                  "--values", "8", "--algorithms", "luby_mis"])

    def test_cancel(self, db_path, capsys):
        main(["--db", db_path, "submit", "--parameter", "n", "--values", "8",
              "--family", "cycle", "--algorithms", "luby_mis"])
        capsys.readouterr()
        assert main(["--db", db_path, "cancel", "1"]) == 0
        assert "cancelled" in capsys.readouterr().out
        # Cancelling again reports failure (exit 1).
        assert main(["--db", db_path, "cancel", "1"]) == 1

    def test_work_drains_the_queue(self, db_path, capsys):
        main(["--db", db_path, "submit", "--parameter", "n", "--values", "8",
              "--family", "cycle", "--algorithms", "luby_mis", "--trials", "1"])
        capsys.readouterr()
        assert main(["--db", db_path, "work", "--poll", "0.02"]) == 0
        assert "done=1" in capsys.readouterr().out

    def test_unknown_job_is_a_clean_error(self, db_path, capsys):
        assert main(["--db", db_path, "status", "99"]) == 2
        assert "no experiment" in capsys.readouterr().err

    def test_registry_lists_names(self, db_path, capsys):
        assert main(["--db", db_path, "registry"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "cycle" in payload["families"]
        assert "luby_mis" in payload["algorithms"]


@pytest.fixture
def api(tmp_path):
    api = ServiceAPI(str(tmp_path / "api.db"))
    thread = threading.Thread(target=api.serve_forever, daemon=True)
    thread.start()
    yield api
    api.shutdown()


def _get(api, path):
    with urllib.request.urlopen(api.url + path, timeout=10) as response:
        return json.load(response)


def _post(api, path, payload):
    request = urllib.request.Request(
        api.url + path,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.load(response)


class TestAPI:
    def test_healthz(self, api):
        payload = _get(api, "/v1/healthz")
        assert payload["status"] == "ok"
        assert payload["schema"] == RESULT_STORE_SCHEMA
        assert payload["spec_format"] == SPEC_FORMAT

    def test_submit_execute_and_read_results(self, api):
        created = _post(api, "/v1/jobs", make_spec().to_dict())
        assert created["status"] == "queued"
        job_id = created["id"]

        scheduler = Scheduler(api._server.db_path, poll_s=0.02)
        try:
            scheduler.drain()
        finally:
            scheduler.close()

        job = _get(api, f"/v1/jobs/{job_id}")
        assert job["status"] == "done"
        assert job["provenance"]["spec_digest"] == make_spec().digest()

        results = _get(api, f"/v1/jobs/{job_id}/results")
        assert len(results["points"]) == 2
        assert results["failures"] == []
        listing = _get(api, "/v1/jobs")
        assert listing["counts"]["done"] == 1

    def test_submit_with_wrapper_and_cancel(self, api):
        created = _post(
            api,
            "/v1/jobs",
            {"spec": make_spec().to_dict(), "max_attempts": 2},
        )
        assert created["max_attempts"] == 2
        cancelled = _post(api, f"/v1/jobs/{created['id']}/cancel", {})
        assert cancelled["cancelled"] is True
        assert cancelled["status"] == "cancelled"

    def test_error_paths(self, api):
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(api, "/v1/jobs/999")
        assert err.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(api, "/v1/jobs", {"format": "sweep-spec/v1", "bogus": 1})
        assert err.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(api, "/v1/nothing")
        assert err.value.code == 404
