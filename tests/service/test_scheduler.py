"""End-to-end scheduler tests: the ISSUE's durability proof.

Submit two experiments, SIGKILL a worker mid-sweep, restart, and read
results out of the store that are bit-identical to an uninterrupted
in-process run — plus the graph-cache dedup guarantee under concurrent
submitters.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.analysis import sweep
from repro.core.errors import ValidationFailed, WorkerCrashed
from repro.service.queue import JobQueue
from repro.service.scheduler import KILL_ENV, Scheduler, journal_path, run_job
from repro.service.specs import SweepSpec
from repro.service.store import ResultStore


def make_spec(**overrides):
    settings = dict(
        parameter="n",
        values=(8, 10),
        family="cycle",
        algorithms=("luby_mis",),
        trials=2,
        seed=3,
    )
    settings.update(overrides)
    return SweepSpec(**settings)


def make_scheduler(db_path, **overrides):
    settings = dict(poll_s=0.02, backoff_base_s=0.02, backoff_cap_s=0.1)
    settings.update(overrides)
    return Scheduler(str(db_path), **settings)


def stored_measurements(store, job_id):
    return [
        (row["value"], row["algorithm"], row["measurement"])
        for row in store.points(job_id)
    ]


def live_measurements(spec):
    return [
        (
            point.value,
            point.measurement.algorithm,
            {
                key: list(value) if isinstance(value, tuple) else value
                for key, value in point.measurement.__dict__.items()
            },
        )
        for point in sweep(**spec.sweep_kwargs())
    ]


@pytest.fixture
def db_path(tmp_path):
    return str(tmp_path / "service.db")


class TestHappyPath:
    def test_drain_resolves_submitted_jobs(self, db_path):
        scheduler = make_scheduler(db_path)
        try:
            spec = make_spec()
            job_id = scheduler.queue.submit(spec)
            assert scheduler.drain() == [job_id]
            job = scheduler.queue.job(job_id)
            assert job.status == "done"
            assert job.attempts == 1
            assert stored_measurements(scheduler.store, job_id) == (
                live_measurements(spec)
            )
        finally:
            scheduler.close()

    def test_provenance_records_the_full_execution_recipe(self, db_path):
        scheduler = make_scheduler(db_path)
        try:
            spec = make_spec(batch_budget_bytes=1 << 20)
            job_id = scheduler.queue.submit(spec)
            scheduler.drain()
            record = scheduler.store.experiment(job_id)
        finally:
            scheduler.close()
        provenance = record["provenance"]
        assert provenance["spec_digest"] == spec.digest()
        assert provenance["batch_budget_bytes"] == 1 << 20
        assert provenance["checkpoint_header"]["batch_budget"] == 1 << 20
        # The explicit per-index seed schedule follows the sweep convention.
        schedule = provenance["seed_schedule"]["per_index"]
        assert schedule["0"] == [3, 4]  # seed + 1000*0 + trial
        assert schedule["1"] == [1003, 1004]
        graphs = provenance["graphs"]
        assert graphs["0"]["n"] == 8
        assert graphs["1"]["n"] == 10
        assert graphs["0"]["key"] == spec.graph_key(0)
        assert graphs["0"]["batch_chunk"] >= 1
        assert graphs["0"]["edge_arrays_meta"]["family"] == "cycle"

    def test_failure_cells_are_recorded_not_fatal(self, db_path):
        # An impossible round budget turns every cell into a structured
        # failure row; the job itself still completes.
        scheduler = make_scheduler(db_path)
        try:
            spec = make_spec(values=(8,), trials=1, max_rounds=0)
            job_id = scheduler.queue.submit(spec)
            scheduler.drain()
            job = scheduler.queue.job(job_id)
            failures = scheduler.store.failures(job_id)
        finally:
            scheduler.close()
        assert job.status == "done"
        assert len(failures) == 1
        assert failures[0]["kind"] == "round-limit"
        assert failures[0]["seed"] == 3


class TestDurability:
    def test_sigkilled_worker_resumes_cell_exact(self, db_path, monkeypatch):
        """The ISSUE acceptance scenario, end to end.

        The kill seam SIGKILLs every worker two journal rows into its sweep.
        Attempt 1 journals cells 1-2 and dies; attempt 2 resumes, skips the
        finished cells, journals 3-4 and dies; attempt 3 finds the journal
        complete, records results, done.  The stored measurements equal an
        uninterrupted in-process run — resumption is cell-exact, not merely
        approximate.
        """
        monkeypatch.setenv(KILL_ENV, "2")
        spec = make_spec()  # 2 values x 1 algorithm x 2 trials = 4 cells
        scheduler = make_scheduler(db_path)
        try:
            job_id = scheduler.queue.submit(spec, max_attempts=3)
            scheduler.drain()
            job = scheduler.queue.job(job_id)
            assert job.status == "done"
            assert job.attempts == 3  # died twice, finished on the third
            monkeypatch.delenv(KILL_ENV)
            assert stored_measurements(scheduler.store, job_id) == (
                live_measurements(spec)
            )
        finally:
            scheduler.close()
        # The journal tells the story: all four cells present, written
        # across two attempts, none duplicated.
        import repro.service.scheduler as sched

        header, rows = sched.sweepmod.read_checkpoint(
            journal_path(db_path, job_id)
        )
        assert len(rows) == 4

    def test_dead_worker_is_classified_worker_crashed(self, db_path, monkeypatch):
        monkeypatch.setenv(KILL_ENV, "1")
        scheduler = make_scheduler(db_path)
        try:
            spec = make_spec(values=(8,), trials=1)  # a single cell
            job_id = scheduler.queue.submit(spec, max_attempts=1)
            scheduler.drain()
            job = scheduler.queue.job(job_id)
        finally:
            scheduler.close()
        assert job.status == "failed"
        assert job.error_kind == WorkerCrashed.kind
        assert "exited" in job.error_message

    def test_journal_rows_survive_the_crash(self, db_path, monkeypatch):
        import repro.service.scheduler as sched

        monkeypatch.setenv(KILL_ENV, "2")
        scheduler = make_scheduler(db_path)
        try:
            job_id = scheduler.queue.submit(make_spec(), max_attempts=1)
            scheduler.drain()
            assert scheduler.queue.job(job_id).status == "failed"
        finally:
            scheduler.close()
        header, rows = sched.sweepmod.read_checkpoint(
            journal_path(db_path, job_id)
        )
        assert len(rows) == 2  # the two cells finished before the SIGKILL
        assert header["parameter"] == "n"

    def test_deterministic_failure_never_retries(self, db_path):
        scheduler = make_scheduler(db_path)
        try:
            # Validation of a wrong answer is deterministic under the seed
            # schedule: LubyMIS cannot stabilise in 0 rounds, and with
            # on_error="record" that lands as failure rows (job done).  To
            # exercise the *permanent-fail* path instead, mark the job
            # failed directly with a deterministic kind.
            job_id = scheduler.queue.submit(make_spec(), max_attempts=5)
            scheduler.queue.claim()
            status = scheduler.queue.mark_failed(
                job_id, ValidationFailed.kind, "wrong"
            )
            assert status == "failed"
            assert scheduler.drain() == []  # nothing left to run
        finally:
            scheduler.close()


class TestGraphCacheDedup:
    def test_concurrent_submitters_share_one_csr_build(self, db_path):
        """Two jobs over the same family running concurrently: every graph
        key is built exactly once, the second consumer reads the cache."""
        spec_a = make_spec(trials=2)
        spec_b = make_spec(trials=2, name="same graphs, other submitter")
        with ResultStore(db_path) as store:
            queue = JobQueue(store)
            id_a = queue.submit(spec_a)
            id_b = queue.submit(spec_b)
        scheduler = make_scheduler(db_path, max_workers=2)
        try:
            scheduler.drain()
            assert scheduler.queue.job(id_a).status == "done"
            assert scheduler.queue.job(id_b).status == "done"
            stats = scheduler.store.graph_cache_stats()
            points_a = stored_measurements(scheduler.store, id_a)
            points_b = stored_measurements(scheduler.store, id_b)
        finally:
            scheduler.close()
        assert len(stats) == 2  # one row per swept value
        for row in stats:
            assert row["status"] == "ready"
            assert row["builds"] == 1  # exactly one CSR build per key
        # And dedup changed nothing about the results.
        assert points_a == points_b
        assert points_a == live_measurements(spec_a)

    def test_run_job_workers_in_separate_processes_dedup(self, db_path):
        """The raw two-process race (no scheduler serialisation at all)."""
        spec = make_spec(values=(14,), trials=1)
        with ResultStore(db_path) as store:
            queue = JobQueue(store)
            id_a = queue.submit(spec)
            id_b = queue.submit(spec.with_name("b"))
            assert queue.claim().id == id_a
            assert queue.claim().id == id_b
        ctx = multiprocessing.get_context("fork")
        workers = [
            ctx.Process(target=run_job, args=(db_path, job_id))
            for job_id in (id_a, id_b)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
            assert worker.exitcode == 0
        with ResultStore(db_path) as store:
            queue = JobQueue(store)
            assert queue.job(id_a).status == "done"
            assert queue.job(id_b).status == "done"
            stats = store.graph_cache_stats()
            assert len(stats) == 1
            assert stats[0]["builds"] == 1
            assert store.points(id_a) == store.points(id_b)
