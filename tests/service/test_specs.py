"""Tests for the serialisable job language (`repro.service.specs`)."""

from __future__ import annotations

import pytest

from repro.service.specs import (
    ALGORITHMS,
    GRAPH_FAMILIES,
    SPEC_FORMAT,
    SweepSpec,
    register_algorithm,
    register_family,
)


def make_spec(**overrides):
    settings = dict(
        parameter="n",
        values=(8, 10),
        family="cycle",
        algorithms=("luby_mis",),
        trials=2,
        seed=3,
    )
    settings.update(overrides)
    return SweepSpec(**settings)


class TestRoundTrip:
    def test_to_dict_from_dict_is_lossless(self):
        spec = make_spec(
            family="fast_gnp",
            family_params={"expected_degree": 4.0, "graph_seed": 11},
            cell_timeout=2.5,
            batch_budget_bytes=1 << 20,
            name="demo",
        )
        assert SweepSpec.from_dict(spec.to_dict()) == spec

    def test_dict_form_carries_the_format_tag(self):
        assert make_spec().to_dict()["format"] == SPEC_FORMAT

    def test_from_dict_rejects_wrong_format(self):
        data = make_spec().to_dict()
        data["format"] = "sweep-spec/v99"
        with pytest.raises(ValueError, match="format"):
            SweepSpec.from_dict(data)

    def test_from_dict_rejects_unknown_keys(self):
        data = make_spec().to_dict()
        data["surprise"] = 1
        with pytest.raises(ValueError, match="surprise"):
            SweepSpec.from_dict(data)

    def test_digest_is_stable_and_content_sensitive(self):
        assert make_spec().digest() == make_spec().digest()
        assert make_spec().digest() != make_spec(seed=4).digest()
        # The name is part of the spec (and so the digest): two submitters
        # naming the same workload differently still share the graph cache
        # via graph_key, which ignores the name.
        assert (
            make_spec().graph_key(0)
            == make_spec(name="other").graph_key(0)
        )


class TestValidation:
    def test_empty_values_rejected(self):
        with pytest.raises(ValueError, match="at least one value"):
            make_spec(values=())

    def test_duplicate_values_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            make_spec(values=(8, 8))

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown graph family"):
            make_spec(family="hypercube")

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            make_spec(algorithms=("luby_mis", "quantum_mis"))

    def test_trivial_bounds(self):
        with pytest.raises(ValueError):
            make_spec(trials=0)
        with pytest.raises(ValueError):
            make_spec(algorithms=())


class TestGraphKeys:
    def test_key_depends_on_value_and_seed(self):
        spec = make_spec()
        assert spec.graph_key(0) != spec.graph_key(1)
        assert spec.graph_key(0) != make_spec(seed=4).graph_key(0)

    def test_key_shared_across_unrelated_spec_fields(self):
        # Same family/value/seed -> same CSR build -> same cache key, even
        # when trials, algorithms or budget differ.
        a = make_spec(trials=2)
        b = make_spec(
            trials=5,
            algorithms=("luby_mis", "randomized_matching"),
            batch_budget_bytes=1 << 16,
        )
        assert a.graph_key(0) == b.graph_key(0)

    def test_network_seed_follows_the_sweep_convention(self):
        spec = make_spec(seed=3)
        assert [spec.network_seed(i) for i in range(2)] == [3, 4]


class TestReconstitution:
    def test_sweep_kwargs_mirror_the_spec(self):
        spec = make_spec(batch_budget_bytes=123456, cell_timeout=9.0)
        kwargs = spec.sweep_kwargs()
        assert kwargs["parameter"] == "n"
        assert kwargs["values"] == [8, 10]
        assert kwargs["trials"] == 2
        assert kwargs["seed"] == 3
        assert kwargs["batch_budget_bytes"] == 123456
        assert kwargs["cell_timeout"] == 9.0
        assert set(kwargs["algorithms"]) == {"luby_mis"}

    def test_graph_source_dispatches_the_registry(self):
        source = make_spec().graph_source(8)
        assert source.n == 8
        assert len(source.src) == 8  # a cycle has n edges

    def test_registries_are_extensible(self):
        register_family("test_only_cycle", GRAPH_FAMILIES["cycle"])
        register_algorithm("test_only_mis", *ALGORITHMS["luby_mis"])
        try:
            spec = make_spec(
                family="test_only_cycle", algorithms=("test_only_mis",)
            )
            assert spec.graph_source(6).n == 6
        finally:
            del GRAPH_FAMILIES["test_only_cycle"]
            del ALGORITHMS["test_only_mis"]
