"""Regression tests for handle hygiene on the store's error paths (REP005).

A ``ResultStore.__init__`` that fails after ``sqlite3.connect`` (foreign
schema version, broken DDL) used to abandon the live connection: nothing
owned it, so sqlite kept the database locked until garbage collection got
around to it.  The fix closes the handle before re-raising.
"""

from __future__ import annotations

import sqlite3

import pytest

from repro.service.store import RESULT_STORE_SCHEMA, ResultStore


def test_init_failure_closes_the_connection(tmp_path, monkeypatch):
    path = tmp_path / "results.sqlite"
    with ResultStore(str(path)):
        pass  # create a valid store, then corrupt its schema marker
    db = sqlite3.connect(str(path))
    with db:
        db.execute(
            "UPDATE meta SET value = 'result-store/v999' WHERE key = 'schema'"
        )
    db.close()

    connections = []
    real_connect = sqlite3.connect

    def recording_connect(*args, **kwargs):
        connection = real_connect(*args, **kwargs)
        connections.append(connection)
        return connection

    monkeypatch.setattr(sqlite3, "connect", recording_connect)
    with pytest.raises(ValueError, match=RESULT_STORE_SCHEMA):
        ResultStore(str(path))

    (connection,) = connections
    with pytest.raises(sqlite3.ProgrammingError, match="closed"):
        connection.execute("SELECT 1")


def test_valid_store_still_opens_after_recording(tmp_path):
    path = tmp_path / "results.sqlite"
    with ResultStore(str(path)) as store:
        assert store.path == str(path)
