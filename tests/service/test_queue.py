"""Tests for the durable job queue (submit / claim / retry classification)."""

from __future__ import annotations

import time

import pytest

from repro.core.errors import (
    CheckpointLocked,
    ValidationFailed,
    WorkerCrashed,
    is_retryable,
)
from repro.service.queue import JobQueue
from repro.service.specs import SweepSpec
from repro.service.store import ResultStore


def make_spec(**overrides):
    settings = dict(
        parameter="n",
        values=(8,),
        family="cycle",
        algorithms=("luby_mis",),
        trials=1,
    )
    settings.update(overrides)
    return SweepSpec(**settings)


@pytest.fixture
def queue(tmp_path):
    store = ResultStore(str(tmp_path / "q.db"))
    yield JobQueue(store, backoff_base_s=0.05, backoff_cap_s=0.2)
    store.close()


class TestLifecycle:
    def test_submit_claim_done(self, queue):
        job_id = queue.submit(make_spec())
        job = queue.claim()
        assert job.id == job_id
        assert job.status == "running"
        assert job.attempts == 1
        queue.mark_done(job_id)
        done = queue.job(job_id)
        assert done.status == "done"
        assert not done.active
        assert queue.claim() is None

    def test_claims_are_fifo(self, queue):
        first = queue.submit(make_spec())
        second = queue.submit(make_spec(seed=1))
        assert queue.claim().id == first
        assert queue.claim().id == second

    def test_spec_round_trips_through_the_queue(self, queue):
        spec = make_spec(values=(8, 12), trials=3, batch_budget_bytes=1 << 20)
        job_id = queue.submit(spec)
        assert queue.job(job_id).spec == spec

    def test_cancel_only_dequeues_queued_jobs(self, queue):
        job_id = queue.submit(make_spec())
        assert queue.cancel(job_id)
        assert queue.job(job_id).status == "cancelled"
        assert not queue.cancel(job_id)  # already cancelled
        running = queue.submit(make_spec(seed=1))
        queue.claim()
        assert not queue.cancel(running)  # running jobs are its worker's
        assert queue.job(running).status == "running"

    def test_counts_and_pending(self, queue):
        queue.submit(make_spec())
        queue.submit(make_spec(seed=1))
        queue.claim()
        counts = queue.counts()
        assert counts["queued"] == 1
        assert counts["running"] == 1
        assert queue.pending() == 2


class TestRetryClassification:
    def test_worker_crash_requeues_with_backoff(self, queue):
        job_id = queue.submit(make_spec(), max_attempts=3)
        queue.claim()
        status = queue.mark_failed(job_id, WorkerCrashed.kind, "lost")
        assert status == "queued"
        job = queue.job(job_id)
        assert job.status == "queued"
        assert job.error_kind == WorkerCrashed.kind
        assert job.not_before > time.time() - 0.01  # backoff gate is set
        # The gate really gates: an immediate claim skips the job.
        if job.not_before > time.time():
            assert queue.claim() is None
        time.sleep(max(0.0, job.not_before - time.time()) + 0.01)
        assert queue.claim().id == job_id

    def test_validation_failure_is_permanent(self, queue):
        # Deterministic failures replay identically under the fixed seed
        # schedule, so retrying can never help.
        job_id = queue.submit(make_spec(), max_attempts=5)
        queue.claim()
        status = queue.mark_failed(job_id, ValidationFailed.kind, "bad MIS")
        assert status == "failed"
        job = queue.job(job_id)
        assert job.status == "failed"
        assert job.attempts == 1  # retries never happened

    def test_attempt_budget_exhausts_retryable_failures(self, queue):
        job_id = queue.submit(make_spec(), max_attempts=2)
        queue.claim()
        assert queue.mark_failed(job_id, WorkerCrashed.kind, "1") == "queued"
        time.sleep(0.06)
        queue.claim()
        assert queue.mark_failed(job_id, WorkerCrashed.kind, "2") == "failed"
        assert queue.job(job_id).attempts == 2

    def test_backoff_grows_exponentially_up_to_the_cap(self, queue):
        job_id = queue.submit(make_spec(), max_attempts=10)
        gates = []
        for _ in range(4):
            while queue.claim() is None:
                time.sleep(0.01)
            before = time.time()
            queue.mark_failed(job_id, CheckpointLocked.kind, "busy")
            gates.append(queue.job(job_id).not_before - before)
        assert gates[0] == pytest.approx(0.05, abs=0.02)
        assert gates[1] == pytest.approx(0.10, abs=0.02)
        assert gates[2] == pytest.approx(0.20, abs=0.02)  # capped
        assert gates[3] == pytest.approx(0.20, abs=0.02)  # stays capped

    def test_taxonomy_wiring(self):
        assert is_retryable(WorkerCrashed.kind)
        assert is_retryable(CheckpointLocked.kind)
        assert not is_retryable(ValidationFailed.kind)
        assert not is_retryable("exception:ValueError")
