"""Per-rule fixture tests: exact rule ids at exact line numbers.

Each fixture under ``fixtures/`` is self-describing: a ``# lint-fixture:``
header names the repo location the file pretends to live at (rules gate on
paths), and every violating line carries a trailing ``# expect[REPxxx]``
marker.  The test asserts the checker produces *exactly* the expected
``(line, rule)`` set — bad fixtures fire on every marked line, good
fixtures stay completely silent.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Set, Tuple

import pytest

from repro.lint.framework import LintRunner
from repro.lint.rules import DEFAULT_RULES, rule_by_id

FIXTURES = Path(__file__).parent / "fixtures"
_HEADER_RE = re.compile(r"#\s*lint-fixture:\s*(\S+)")
_EXPECT_RE = re.compile(r"#\s*expect\[(REP\d+)\]")


def load_fixture(path: Path) -> Tuple[str, Set[Tuple[int, str]]]:
    lines = path.read_text(encoding="utf-8").splitlines()
    header = _HEADER_RE.search(lines[0])
    if header is None:
        raise AssertionError(f"{path.name} lacks a '# lint-fixture:' header")
    expected = {
        (lineno, match.group(1))
        for lineno, line in enumerate(lines, start=1)
        for match in _EXPECT_RE.finditer(line)
    }
    return header.group(1), expected


def lint_fixture(path: Path) -> Tuple[Set[Tuple[int, str]], Set[Tuple[int, str]]]:
    logical, expected = load_fixture(path)
    findings = LintRunner(list(DEFAULT_RULES)).lint_file(
        str(path), root=str(FIXTURES), logical_path=logical
    )
    return expected, {(finding.line, finding.rule) for finding in findings}


@pytest.mark.parametrize(
    "name", sorted(p.name for p in FIXTURES.glob("rep*_bad.py"))
)
def test_bad_fixture_fires_on_every_marked_line(name):
    expected, actual = lint_fixture(FIXTURES / name)
    assert expected, f"{name} marks no expected findings"
    assert actual == expected


@pytest.mark.parametrize(
    "name", sorted(p.name for p in FIXTURES.glob("rep*_good.py"))
)
def test_good_fixture_stays_silent(name):
    expected, actual = lint_fixture(FIXTURES / name)
    assert expected == set()
    assert actual == set()


def test_every_rule_has_a_bad_and_a_good_fixture():
    ids = {rule.id for rule in DEFAULT_RULES}
    for rule_id in ids:
        stem = rule_id.lower()
        assert (FIXTURES / f"{stem}_bad.py").exists()
        assert (FIXTURES / f"{stem}_good.py").exists()
    # ... and the bad fixtures collectively demonstrate exactly those rules.
    fired = set()
    for path in FIXTURES.glob("rep*_bad.py"):
        _, actual = lint_fixture(path)
        fired.update(rule for _, rule in actual)
    assert fired == ids


def test_rule_by_id_round_trip():
    for rule in DEFAULT_RULES:
        assert rule_by_id(rule.id) is rule
    with pytest.raises(KeyError):
        rule_by_id("REP999")


def test_rules_scope_by_path():
    # The same source is a violation on a hot-path module and silent off it.
    bad = FIXTURES / "rep002_bad.py"
    runner = LintRunner([rule_by_id("REP002")])
    on_hot_path = runner.lint_file(
        str(bad), root=str(FIXTURES), logical_path="src/repro/local/engine.py"
    )
    off_hot_path = runner.lint_file(
        str(bad), root=str(FIXTURES), logical_path="src/repro/analysis/tables.py"
    )
    assert on_hot_path and not off_hot_path
