"""Baseline semantics: add/expire round-trip, multiset matching, format."""

from __future__ import annotations

import json

import pytest

from repro.core import schemas
from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.findings import Finding


def finding(rule="REP006", path="src/repro/core/x.py", line=3, snippet="assert x"):
    return Finding(
        path=path, line=line, col=0, rule=rule, message="m", snippet=snippet
    )


class TestRoundTrip:
    def test_add_then_reload_absorbs_everything(self, tmp_path):
        findings = [finding(line=3), finding(line=9, snippet="assert y")]
        target = tmp_path / "baseline.json"
        Baseline.from_findings(findings, justification="seed debt").save(
            str(target)
        )
        document = json.loads(target.read_text())
        assert document["format"] == schemas.LINT_BASELINE
        assert all(
            row["justification"] == "seed debt" for row in document["entries"]
        )

        loaded = Baseline.load(str(target))
        new, baselined, expired = loaded.apply(findings)
        assert new == [] and baselined == 2 and expired == []

    def test_entry_expires_when_the_line_is_fixed(self, tmp_path):
        findings = [finding(line=3), finding(line=9, snippet="assert y")]
        target = tmp_path / "baseline.json"
        Baseline.from_findings(findings).save(str(target))

        # The 'assert y' violation is fixed: its entry must surface as stale.
        remaining = [finding(line=3)]
        new, baselined, expired = Baseline.load(str(target)).apply(remaining)
        assert new == [] and baselined == 1
        assert [entry.snippet for entry in expired] == ["assert y"]

    def test_matching_survives_line_drift(self):
        baseline = Baseline(
            entries=[BaselineEntry(rule="REP006", path="p.py", snippet="assert x")]
        )
        drifted = [finding(path="p.py", line=400)]
        new, baselined, expired = baseline.apply(drifted)
        assert new == [] and baselined == 1 and expired == []


class TestMultisetSemantics:
    def test_second_copy_of_a_grandfathered_pattern_still_fails(self):
        baseline = Baseline(
            entries=[BaselineEntry(rule="REP006", path="p.py", snippet="assert x")]
        )
        duplicated = [finding(path="p.py", line=3), finding(path="p.py", line=8)]
        new, baselined, _ = baseline.apply(duplicated)
        assert baselined == 1
        assert [f.line for f in new] == [8]

    def test_duplicate_entries_absorb_duplicate_findings(self):
        entry = BaselineEntry(rule="REP006", path="p.py", snippet="assert x")
        baseline = Baseline(entries=[entry, entry])
        duplicated = [finding(path="p.py", line=3), finding(path="p.py", line=8)]
        new, baselined, expired = baseline.apply(duplicated)
        assert new == [] and baselined == 2 and expired == []


class TestFormat:
    def test_foreign_format_is_rejected(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text(json.dumps({"format": "lint-baseline/v99", "entries": []}))
        with pytest.raises(ValueError, match="lint-baseline/v1"):
            Baseline.load(str(target))

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            Baseline.load(str(tmp_path / "absent.json"))
