"""Meta-tests: the checker is clean on the live tree, schemas can't drift.

Marked ``lint_smoke`` so CI (and ``pytest -m lint_smoke``) can run exactly
this guard; it also runs in the plain tier-1 suite.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.sweep import CHECKPOINT_FORMAT
from repro.core import schemas
from repro.lint.baseline import Baseline
from repro.lint.framework import lint_paths
from repro.lint.rules import DEFAULT_RULES
from repro.service.specs import SPEC_FORMAT
from repro.service.store import RESULT_STORE_SCHEMA

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE = REPO_ROOT / "lint-baseline.json"

pytestmark = pytest.mark.lint_smoke


def test_live_tree_is_clean_modulo_baseline():
    findings = lint_paths(["src/repro"], str(REPO_ROOT), list(DEFAULT_RULES))
    new, _, expired = Baseline.load(str(BASELINE)).apply(findings)
    assert new == [], "new lint findings:\n" + "\n".join(
        finding.render() for finding in new
    )
    assert expired == [], "stale baseline entries:\n" + "\n".join(
        f"{entry.path}: {entry.snippet!r}" for entry in expired
    )


def test_module_entry_point_is_clean():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.lint",
            "--baseline",
            "--strict-baseline",
            "--format=json",
        ],
        cwd=str(REPO_ROOT),
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stdout + result.stderr


def test_schema_strings_resolve_to_the_constants_module():
    # The writers' module-level identifiers ARE the schemas constants, so
    # readers, writers, docs pointers and the store can never drift apart.
    assert SPEC_FORMAT is schemas.SWEEP_SPEC
    assert RESULT_STORE_SCHEMA is schemas.RESULT_STORE
    assert CHECKPOINT_FORMAT is schemas.SWEEP_CHECKPOINT
    assert schemas.ALL_SCHEMAS["bench_core"] == schemas.BENCH_CORE
    for slug, value in schemas.ALL_SCHEMAS.items():
        name, _, version = value.partition("/v")
        assert name and version.isdigit(), (slug, value)


def test_baseline_entries_are_justified():
    baseline = Baseline.load(str(BASELINE))
    for entry in baseline.entries:
        assert entry.justification.strip(), (
            f"baseline entry for {entry.path} ({entry.rule}) lacks a "
            "justification"
        )
