"""Framework behaviour: allow comments, dispatch, helpers, file discovery."""

from __future__ import annotations

import ast
import textwrap

from repro.lint.findings import Finding
from repro.lint.framework import (
    LintRunner,
    ModuleSource,
    dotted_name,
    enclosing_class,
    enclosing_function,
    is_docstring,
    iter_python_files,
)
from repro.lint.rules import rule_by_id


def module_from(source: str, logical: str, tmp_path) -> ModuleSource:
    path = tmp_path / "mod.py"
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return ModuleSource.parse(str(path), str(tmp_path), logical_path=logical)


class TestAllowComments:
    LOGICAL = "src/repro/core/mod.py"

    def run(self, source, tmp_path):
        module = module_from(source, self.LOGICAL, tmp_path)
        return LintRunner([rule_by_id("REP006")]).lint_module(module)

    def test_same_line_allow_suppresses(self, tmp_path):
        findings = self.run(
            "assert True  # repro-lint: allow[REP006] documented\n", tmp_path
        )
        assert findings == []

    def test_preceding_line_allow_suppresses(self, tmp_path):
        findings = self.run(
            "# repro-lint: allow[REP006] documented\nassert True\n", tmp_path
        )
        assert findings == []

    def test_multi_rule_allow(self, tmp_path):
        findings = self.run(
            "assert True  # repro-lint: allow[REP001, REP006]\n", tmp_path
        )
        assert findings == []

    def test_allow_for_other_rule_does_not_suppress(self, tmp_path):
        findings = self.run(
            "assert True  # repro-lint: allow[REP001]\n", tmp_path
        )
        assert [finding.rule for finding in findings] == ["REP006"]

    def test_two_lines_below_does_not_suppress(self, tmp_path):
        findings = self.run(
            "# repro-lint: allow[REP006]\n\nassert True\n", tmp_path
        )
        assert [finding.rule for finding in findings] == ["REP006"]


class TestHelpers:
    def test_dotted_name(self):
        call = ast.parse("a.b.c()").body[0].value
        assert dotted_name(call.func) == "a.b.c"
        subscripted = ast.parse("a[0].c()").body[0].value
        assert dotted_name(subscripted.func) is None

    def test_enclosing_scopes(self, tmp_path):
        module = module_from(
            """
            class Box:
                def method(self):
                    x = 1
                    return x
            """,
            "src/repro/core/mod.py",
            tmp_path,
        )
        assign = module.tree.body[0].body[0].body[0]
        assert enclosing_function(assign).name == "method"
        assert enclosing_class(assign).name == "Box"
        assert enclosing_function(module.tree.body[0]) is None

    def test_is_docstring(self, tmp_path):
        module = module_from(
            '"""doc"""\nx = "not-a-doc"\n', "src/repro/core/mod.py", tmp_path
        )
        doc = module.tree.body[0].value
        other = module.tree.body[1].value
        assert is_docstring(doc)
        assert not is_docstring(other)

    def test_finding_snippet_and_render(self, tmp_path):
        module = module_from("assert True\n", "src/repro/core/mod.py", tmp_path)
        finding = module.finding(module.tree.body[0], "REP006", "msg")
        assert finding.snippet == "assert True"
        assert finding.render() == "src/repro/core/mod.py:1:0: REP006 msg"
        assert isinstance(finding, Finding)


class TestFileDiscovery:
    def test_walks_directories_and_skips_pycache(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "a.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "notes.txt").write_text("skip\n")
        files = list(iter_python_files(["pkg"], str(tmp_path)))
        assert [f.replace(str(tmp_path) + "/", "") for f in files] == ["pkg/a.py"]

    def test_accepts_single_file(self, tmp_path):
        target = tmp_path / "one.py"
        target.write_text("x = 1\n")
        assert list(iter_python_files([str(target)], str(tmp_path))) == [
            str(target)
        ]
