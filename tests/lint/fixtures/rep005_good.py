# lint-fixture: src/repro/service/fixture_resources.py
"""Good REP005 fixture: every acquisition has a release on all paths."""

import sqlite3
import sys
from multiprocessing import shared_memory


def with_statement(path):
    with open(path, "r", encoding="utf-8") as fh:
        return fh.read()


def try_finally(path):
    db = sqlite3.connect(path)
    try:
        return db.execute("SELECT 1").fetchone()
    finally:
        db.close()


def cleanup_in_handler(name):
    segment = shared_memory.SharedMemory(name=name)
    try:
        return bytes(segment.buf[:8])
    except BaseException:
        segment.unlink()
        raise


def ternary_then_with(path, use_stdin):
    stream = sys.stdin if use_stdin else open(path)
    with stream:
        return stream.read()


class Closer:
    def __init__(self, path):
        self._db = sqlite3.connect(path)

    def close(self):
        self._db.close()
