# lint-fixture: src/repro/service/fixture_schemas.py
"""Bad REP004 fixture: schema literals spelled outside repro.core.schemas."""

FORMAT = "sweep-spec/v1"  # expect[REP004]


def stamp(document):
    document["schema"] = "bench-core/v7"  # expect[REP004]
    return document.get("format") == "result-store/v1"  # expect[REP004]
