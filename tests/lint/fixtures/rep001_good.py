# lint-fixture: src/repro/local/fixture_determinism.py
"""Good REP001 fixture: seeded constructions and monotonic timing."""

import random
import time

from numpy.random import PCG64, SeedSequence, default_rng


def seeded(seed):
    rng = random.Random(seed)
    rng.shuffle([1, 2, 3])
    gen = default_rng(seed)
    bits = PCG64(seed)
    seq = SeedSequence([seed, 3])
    elapsed = time.perf_counter()
    sanctioned = default_rng()  # repro-lint: allow[REP001] sanctioned helper
    return rng, gen, bits, seq, elapsed, sanctioned
