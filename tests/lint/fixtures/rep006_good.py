# lint-fixture: src/repro/core/fixture_errors.py
"""Good REP006 fixture: taxonomy kinds and typed exceptions."""

from repro.core.errors import ValidationFailed, WorkerCrashed


def runtime_checks(flag, verdict):
    if not verdict:
        raise ValidationFailed("execution produced an invalid solution")
    if flag is None:
        raise WorkerCrashed("pool worker died")
    raise ValueError("typed exceptions classify as exception:<Type>")
