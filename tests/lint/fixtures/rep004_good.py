# lint-fixture: src/repro/service/fixture_schemas.py
"""Good REP004 fixture: constants come from repro.core.schemas.

Docstrings may *mention* a schema like ``sweep-spec/v1`` freely — prose is
not a contract the store validates against.
"""

from repro.core import schemas

FORMAT = schemas.SWEEP_SPEC


def stamp(document):
    """Stamp the ``bench-core/v7`` identifier onto ``document``."""
    document["schema"] = schemas.BENCH_CORE
    url = "/v1/jobs"  # URL paths are not schema identifiers
    almost = "not/v" + "1"  # built strings are out of syntactic reach
    return document, url, almost
