# lint-fixture: src/repro/algorithms/fixture_protocol.py
"""Bad REP003 fixture: half-implemented array-algorithm protocols."""


class MissingStep:  # expect[REP003]
    def init_arrays(self, topology, rng):
        return None


class PartialBatch:  # expect[REP003]
    def init_arrays(self, topology, rng):
        return None

    def step(self, rounds, state, topology, rng):
        return None

    def init_batch(self, topology, rngs):
        return None

    def step_batch(self, rounds, batch, topology, rngs, active):
        return None


class Coroutine:
    def as_array_algorithm(self):
        return BrokenTwin()  # expect[REP003]


class BrokenTwin:  # expect[REP003]
    def init_arrays(self, topology, rng):
        return None
