# lint-fixture: src/repro/local/fixture_determinism.py
"""Bad REP001 fixture: every documented unseeded-randomness pattern."""

import random
import time
from datetime import datetime

from numpy.random import PCG64, SeedSequence, default_rng


def unseeded(values):
    random.shuffle(values)  # expect[REP001]
    rng = random.Random()  # expect[REP001]
    gen = default_rng()  # expect[REP001]
    bits = PCG64(None)  # expect[REP001]
    seq = SeedSequence()  # expect[REP001]
    stamp = time.time()  # expect[REP001]
    tick = time.time_ns()  # expect[REP001]
    now = datetime.now()  # expect[REP001]
    return rng, gen, bits, seq, stamp, tick, now
