# lint-fixture: src/repro/core/fixture_errors.py
"""Bad REP006 fixture: untyped failures invisible to classify_failure()."""


def runtime_checks(flag):
    assert flag, "runtime check"  # expect[REP006]
    if flag is None:
        raise Exception("boom")  # expect[REP006]
    raise BaseException  # expect[REP006]
