# lint-fixture: src/repro/service/fixture_resources.py
"""Bad REP005 fixture: handles that leak on at least one path."""

import sqlite3
from multiprocessing import shared_memory


def never_closed(path):
    db = sqlite3.connect(path)  # expect[REP005]
    return db.execute("SELECT 1").fetchone()


def bare_open(path):
    return open(path).read()  # expect[REP005]


def happy_path_close_only(name):
    segment = shared_memory.SharedMemory(name=name)  # expect[REP005]
    value = bytes(segment.buf[:8])
    segment.close()  # skipped whenever the read above raises
    return value


class NoCloser:
    def __init__(self, path):
        self._db = sqlite3.connect(path)  # expect[REP005]
