# lint-fixture: src/repro/local/engine.py
"""Good REP002 fixture: array-native edge access stays silent."""


def vectorised(network, np):
    us, vs = network.edge_endpoints()
    degrees = np.bincount(us, minlength=network.n)
    for block in (us, vs):  # per-array loop, not per-edge
        degrees = degrees + block.size
    return degrees


def cold_module_can_materialise(network):
    # The same calls are legal outside the hot-path module set; this file
    # only stays silent because the calls below are allow-listed.
    # repro-lint: allow[REP002] exercising the escape hatch in tests
    return list(network.edges())
