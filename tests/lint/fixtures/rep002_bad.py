# lint-fixture: src/repro/local/engine.py
"""Bad REP002 fixture: tuple-edge materialisation on a hot-path module."""


def per_edge_python(network, arrays):
    graph = network.to_networkx()  # expect[REP002]
    n, edges = arrays.as_edge_list()  # expect[REP002]
    pairs = arrays.as_pairs()  # expect[REP002]
    edge_view = list(network.edges())  # expect[REP002]
    total = 0
    for u, v in network.edges():  # expect[REP002]
        total += u + v
    weights = [u for u, _ in network.edges()]  # expect[REP002]
    return graph, n, edges, pairs, edge_view, total, weights
