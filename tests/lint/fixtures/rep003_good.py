# lint-fixture: src/repro/algorithms/fixture_protocol.py
"""Good REP003 fixture: complete protocols, None opt-out, inheritance."""


class SingleTrialBase:
    def init_arrays(self, topology, rng):
        return None

    def step(self, rounds, state, topology, rng):
        return None


class FullBatch(SingleTrialBase):
    def init_batch(self, topology, rngs):
        return None

    def step_batch(self, rounds, batch, topology, rngs, active):
        return None

    def batch_complete(self, batch):
        return None


class CoroutineOnly:
    def as_array_algorithm(self):
        return None


class Coroutine:
    def as_array_algorithm(self):
        return FullBatch()


class UnrelatedStepper:
    # A lone step() method is not an array algorithm (schedulers step too).
    def step(self):
        return None
