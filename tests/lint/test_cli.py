"""CLI contract: exit codes, JSON report schema, baseline workflow."""

from __future__ import annotations

import json

import pytest

from repro.core import schemas
from repro.lint.cli import main
from repro.lint.rules import DEFAULT_RULES

VIOLATION = "def f(x):\n    assert x\n    return x\n"
CLEAN = "def f(x):\n    return x\n"


@pytest.fixture
def repo(tmp_path):
    """A miniature repo root with one (violating) module under src/repro."""
    module_dir = tmp_path / "src" / "repro" / "core"
    module_dir.mkdir(parents=True)
    (module_dir / "mod.py").write_text(VIOLATION, encoding="utf-8")
    return tmp_path


def run(repo, *argv):
    return main(["--root", str(repo), *argv])


class TestExitCodes:
    def test_findings_exit_1(self, repo):
        assert run(repo) == 1

    def test_clean_tree_exits_0(self, repo):
        (repo / "src" / "repro" / "core" / "mod.py").write_text(CLEAN)
        assert run(repo) == 0

    def test_baselined_findings_exit_0(self, repo):
        assert run(repo, "--write-baseline") == 0
        assert run(repo, "--baseline") == 0

    def test_stale_baseline_is_tolerated_unless_strict(self, repo):
        run(repo, "--write-baseline")
        (repo / "src" / "repro" / "core" / "mod.py").write_text(CLEAN)
        assert run(repo, "--baseline") == 0
        assert run(repo, "--baseline", "--strict-baseline") == 1

    def test_missing_baseline_is_a_usage_error(self, repo):
        with pytest.raises(SystemExit) as excinfo:
            run(repo, "--baseline", "nope.json")
        assert excinfo.value.code == 2

    def test_unknown_rule_id_is_a_usage_error(self, repo):
        with pytest.raises(SystemExit) as excinfo:
            run(repo, "--rules", "REP999")
        assert excinfo.value.code == 2


class TestJsonReport:
    def read_report(self, capsys):
        return json.loads(capsys.readouterr().out)

    def test_schema_and_finding_rows(self, repo, capsys):
        assert run(repo, "--format=json") == 1
        report = self.read_report(capsys)
        assert report["format"] == schemas.LINT_REPORT
        assert set(report) == {"format", "rules", "findings", "baselined", "expired"}
        assert set(report["rules"]) == {rule.id for rule in DEFAULT_RULES}
        (row,) = report["findings"]
        assert set(row) == {"rule", "path", "line", "col", "message", "snippet"}
        assert row["rule"] == "REP006"
        assert row["path"] == "src/repro/core/mod.py"
        assert row["line"] == 2
        assert row["snippet"] == "assert x"

    def test_baselined_and_expired_counts(self, repo, capsys):
        run(repo, "--write-baseline")
        capsys.readouterr()
        assert run(repo, "--baseline", "--format=json") == 0
        report = self.read_report(capsys)
        assert report["findings"] == [] and report["baselined"] == 1

        (repo / "src" / "repro" / "core" / "mod.py").write_text(CLEAN)
        assert run(repo, "--baseline", "--format=json") == 0
        report = self.read_report(capsys)
        assert report["baselined"] == 0
        (expired,) = report["expired"]
        assert expired["snippet"] == "assert x"
        assert set(expired) == {"rule", "path", "line", "snippet", "justification"}


class TestSelection:
    def test_rules_filter(self, repo):
        assert run(repo, "--rules", "REP001") == 0  # REP006 not selected
        assert run(repo, "--rules", "REP006,REP001") == 1

    def test_list_rules(self, repo, capsys):
        assert run(repo, "--list-rules") == 0
        out = capsys.readouterr().out
        for rule in DEFAULT_RULES:
            assert rule.id in out

    def test_explicit_paths(self, repo):
        clean_dir = repo / "src" / "repro" / "graphs"
        clean_dir.mkdir()
        (clean_dir / "ok.py").write_text(CLEAN, encoding="utf-8")
        assert run(repo, "src/repro/graphs") == 0
        assert run(repo, "src/repro/core") == 1
