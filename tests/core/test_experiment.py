"""Tests for the trial-running helpers of repro.core.experiment."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.algorithms.mis import LubyMIS
from repro.algorithms.ruling_set import RandomizedTwoTwoRulingSet
from repro.core import problems
from repro.core.experiment import evaluate, run_trials
from repro.local.network import Network
from repro.local.runner import Runner


@pytest.fixture
def small_network():
    return Network.from_graph(nx.gnp_random_graph(30, 0.15, seed=1), id_scheme="permuted")


class TestRunTrials:
    def test_returns_requested_number_of_traces(self, small_network):
        traces = run_trials(LubyMIS, small_network, problems.MIS, trials=4, seed=0)
        assert len(traces) == 4
        for trace in traces:
            assert trace.completed

    def test_trials_use_distinct_seeds(self, small_network):
        traces = run_trials(LubyMIS, small_network, problems.MIS, trials=3, seed=0)
        outputs = [tuple(sorted(t.selected_nodes())) for t in traces]
        assert len(set(outputs)) > 1

    def test_same_base_seed_reproduces_results(self, small_network):
        first = run_trials(LubyMIS, small_network, problems.MIS, trials=2, seed=7)
        second = run_trials(LubyMIS, small_network, problems.MIS, trials=2, seed=7)
        assert [t.node_outputs for t in first] == [t.node_outputs for t in second]

    def test_validation_can_be_disabled(self, small_network):
        traces = run_trials(
            LubyMIS, small_network, problems.MIS, trials=1, seed=0, validate=False
        )
        assert len(traces) == 1

    def test_invalid_trial_count_rejected(self, small_network):
        with pytest.raises(ValueError):
            run_trials(LubyMIS, small_network, problems.MIS, trials=0)

    def test_custom_runner_is_used(self, small_network):
        strict_runner = Runner(max_rounds=1, strict=False)
        traces = run_trials(
            LubyMIS, small_network, problems.MIS, trials=1, seed=0,
            runner=strict_runner, validate=False,
        )
        assert traces[0].rounds <= 1
        assert not traces[0].completed


class TestEvaluate:
    def test_evaluate_aggregates_measurement(self, small_network):
        measurement = evaluate(LubyMIS, small_network, problems.MIS, trials=3, seed=0)
        assert measurement.trials == 3
        assert measurement.n == small_network.n
        assert measurement.node_averaged <= measurement.worst_case

    def test_evaluate_different_problems(self, small_network):
        mis = evaluate(LubyMIS, small_network, problems.MIS, trials=2, seed=0)
        ruling = evaluate(
            RandomizedTwoTwoRulingSet, small_network, problems.ruling_set(2, 2), trials=2, seed=0
        )
        assert mis.problem == "maximal-independent-set"
        assert ruling.problem == "(2,2)-ruling-set"
