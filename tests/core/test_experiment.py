"""Tests for the trial-running helpers of repro.core.experiment."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.algorithms.mis import LubyMIS
from repro.algorithms.ruling_set import RandomizedTwoTwoRulingSet
from repro.core import problems
from repro.core.experiment import evaluate, run_trials
from repro.local.network import Network
from repro.local.runner import Runner


@pytest.fixture
def small_network():
    return Network.from_graph(nx.gnp_random_graph(30, 0.15, seed=1), id_scheme="permuted")


class TestRunTrials:
    def test_returns_requested_number_of_traces(self, small_network):
        traces = run_trials(LubyMIS, small_network, problems.MIS, trials=4, seed=0)
        assert len(traces) == 4
        for trace in traces:
            assert trace.completed

    def test_trials_use_distinct_seeds(self, small_network):
        traces = run_trials(LubyMIS, small_network, problems.MIS, trials=3, seed=0)
        outputs = [tuple(sorted(t.selected_nodes())) for t in traces]
        assert len(set(outputs)) > 1

    def test_same_base_seed_reproduces_results(self, small_network):
        first = run_trials(LubyMIS, small_network, problems.MIS, trials=2, seed=7)
        second = run_trials(LubyMIS, small_network, problems.MIS, trials=2, seed=7)
        assert [t.node_outputs for t in first] == [t.node_outputs for t in second]

    def test_validation_can_be_disabled(self, small_network):
        traces = run_trials(
            LubyMIS, small_network, problems.MIS, trials=1, seed=0, validate=False
        )
        assert len(traces) == 1

    def test_invalid_trial_count_rejected(self, small_network):
        with pytest.raises(ValueError):
            run_trials(LubyMIS, small_network, problems.MIS, trials=0)

    def test_custom_runner_is_used(self, small_network):
        strict_runner = Runner(max_rounds=1, strict=False)
        traces = run_trials(
            LubyMIS, small_network, problems.MIS, trials=1, seed=0,
            runner=strict_runner, validate=False,
        )
        assert traces[0].rounds <= 1
        assert not traces[0].completed


class TestEvaluate:
    def test_evaluate_aggregates_measurement(self, small_network):
        measurement = evaluate(LubyMIS, small_network, problems.MIS, trials=3, seed=0)
        assert measurement.trials == 3
        assert measurement.n == small_network.n
        assert measurement.node_averaged <= measurement.worst_case

    def test_evaluate_different_problems(self, small_network):
        mis = evaluate(LubyMIS, small_network, problems.MIS, trials=2, seed=0)
        ruling = evaluate(
            RandomizedTwoTwoRulingSet, small_network, problems.ruling_set(2, 2), trials=2, seed=0
        )
        assert mis.problem == "maximal-independent-set"
        assert ruling.problem == "(2,2)-ruling-set"


class TestResolveNetwork:
    def test_network_returned_as_is(self, small_network):
        from repro.core.experiment import resolve_network

        assert resolve_network(small_network) is small_network

    def test_equivalent_sources_produce_identical_networks(self):
        from repro.core.experiment import resolve_network
        from repro.graphs import generators as gen

        pair = gen.cycle_edges(30)
        arrays = gen.cycle_edges(30, as_arrays=True)
        graph = gen.cycle_graph(30)
        nets = [
            resolve_network(pair, seed=4),
            resolve_network(arrays, seed=4),
            resolve_network(graph, seed=4),
            resolve_network(lambda: gen.cycle_edges(30, as_arrays=True), seed=4),
        ]
        assert len({net.edges for net in nets}) == 1
        assert len({net.identifiers for net in nets}) == 1

    def test_unknown_source_rejected(self):
        from repro.core.experiment import resolve_network

        with pytest.raises(TypeError, match="graph source"):
            resolve_network(3.14)


class TestExperimentFacade:
    def test_run_returns_structured_results(self):
        from repro.core.experiment import Experiment
        from repro.graphs import generators as gen

        result = Experiment(
            problem=problems.MIS,
            algorithm=LubyMIS,
            graphs=gen.fast_gnp_edges(120, 0.05, seed=2, as_arrays=True),
            seeds=[0, 1, 2],
        ).run()
        run = result.run
        assert run.name == "fast_gnp"
        assert run.seeds == (0, 1, 2)
        assert len(run.traces) == 3
        assert run.verdicts == (True, True, True) and run.ok and result.ok
        assert run.measurement.trials == 3
        assert run.measurement.node_quantiles  # quantiles on by default
        assert {"network_s", "runner_s", "validate_s", "measure_s", "total_s"} <= set(
            run.timings
        )

    def test_matches_run_trials_seed_for_seed(self, small_network):
        from repro.core.experiment import Experiment

        result = Experiment(
            problem=problems.MIS,
            algorithm=LubyMIS,
            graphs=small_network,
            trials=3,
            seed=7,
            quantiles=None,
        ).run()
        reference = run_trials(LubyMIS, small_network, problems.MIS, trials=3, seed=7)
        assert [t.node_outputs for t in result.run.traces] == [
            t.node_outputs for t in reference
        ]
        from repro.core.metrics import measure

        assert result.run.measurement == measure(reference)

    def test_named_graphs_and_rows(self):
        from repro.core.experiment import Experiment
        from repro.graphs import generators as gen

        result = Experiment(
            problem=problems.MIS,
            algorithm=LubyMIS,
            graphs={
                "cycle": gen.cycle_edges(24, as_arrays=True),
                "grid": lambda: gen.grid_edges(4, 6, as_arrays=True),
            },
            seeds=[0],
        ).run()
        assert len(result) == 2
        assert [run.name for run in result] == ["cycle", "grid"]
        assert "generate_s" not in result[0].timings
        assert "generate_s" in result[1].timings
        rows = result.as_rows()
        assert rows[0]["graph"] == "cycle" and rows[0]["valid"] is True
        assert rows[0]["problem"] == "maximal-independent-set"
        with pytest.raises(ValueError, match="2 runs"):
            result.run

    def test_sequence_of_graphs_gets_positional_names(self):
        from repro.core.experiment import Experiment
        from repro.graphs import generators as gen

        result = Experiment(
            problem=problems.MIS,
            algorithm=LubyMIS,
            graphs=[gen.path_edges(10), gen.path_edges(12)],
            seeds=[0],
        ).run()
        assert [run.name for run in result] == ["graph-0", "graph-1"]

    def test_single_pair_is_one_graph_not_a_sequence(self):
        from repro.core.experiment import Experiment
        from repro.graphs import generators as gen

        result = Experiment(
            problem=problems.MIS,
            algorithm=LubyMIS,
            graphs=gen.cycle_edges(12),
            seeds=[0],
        ).run()
        assert len(result) == 1
        assert result.run.network.n == 12

    def test_problem_and_algorithm_factories_receive_network(self, small_network):
        from repro.core.experiment import Experiment

        seen = []

        def problem_factory(network):
            seen.append(network)
            return problems.MIS

        result = Experiment(
            problem=problem_factory,
            algorithm=lambda network: LubyMIS(),
            graphs=small_network,
            seeds=[0],
        ).run()
        assert seen == [small_network]
        assert result.ok

    def test_seeds_and_trials_mutually_exclusive(self, small_network):
        from repro.core.experiment import Experiment

        with pytest.raises(ValueError, match="not both"):
            Experiment(
                problem=problems.MIS,
                algorithm=LubyMIS,
                graphs=small_network,
                seeds=[0],
                trials=2,
            )
        with pytest.raises(ValueError, match="at least one"):
            Experiment(
                problem=problems.MIS,
                algorithm=LubyMIS,
                graphs=small_network,
                seeds=[],
            )

    def test_invalid_solutions_surface_in_verdicts_when_not_required(self, small_network):
        from repro.core.experiment import Experiment
        from repro.local.runner import Runner

        # A runner capped at 0 rounds leaves every node uncommitted, so the
        # MIS validator must reject the (empty, non-maximal) output.
        result = Experiment(
            problem=problems.MIS,
            algorithm=LubyMIS,
            graphs=small_network,
            seeds=[0],
            runner=Runner(max_rounds=0, strict=False),
            require_valid=False,
        ).run()
        assert result.run.verdicts == (False,)
        assert not result.ok

    def test_require_valid_raises_on_invalid_trial(self, small_network):
        from repro.core.experiment import Experiment
        from repro.local.runner import Runner

        with pytest.raises(Exception):
            Experiment(
                problem=problems.MIS,
                algorithm=LubyMIS,
                graphs=small_network,
                seeds=[0],
                runner=Runner(max_rounds=0, strict=False),
            ).run()

    def test_reusable_builder_reproduces_results(self, small_network):
        from repro.core.experiment import Experiment

        experiment = Experiment(
            problem=problems.MIS,
            algorithm=LubyMIS,
            graphs=small_network,
            seeds=[3, 4],
            quantiles=None,
        )
        first = experiment.run()
        second = experiment.run()
        assert first.run.measurement == second.run.measurement
        assert [t.node_outputs for t in first.run.traces] == [
            t.node_outputs for t in second.run.traces
        ]

    def test_parameterised_algorithm_class_needs_an_explicit_factory(self, small_network):
        from repro.algorithms.ruling_set.deterministic import DeterministicRulingSet
        from repro.core.experiment import Experiment

        # A class whose required __init__ params are config values must not
        # have the network silently bound to the first slot.
        with pytest.raises(TypeError, match="pass a factory instead"):
            Experiment(
                problem=problems.MIS,
                algorithm=DeterministicRulingSet,
                graphs=small_network,
                seeds=[0],
            )

    def test_many_argument_factory_rejected(self, small_network):
        from repro.core.experiment import Experiment

        with pytest.raises(TypeError, match="zero arguments or only the network"):
            Experiment(
                problem=problems.MIS,
                algorithm=lambda network, extra: LubyMIS(),
                graphs=small_network,
                seeds=[0],
            )

    def test_pair_with_numpy_integer_n_is_one_graph(self):
        import numpy as np

        from repro.core.experiment import Experiment
        from repro.graphs import generators as gen

        n, edges = gen.cycle_edges(12)
        result = Experiment(
            problem=problems.MIS,
            algorithm=LubyMIS,
            graphs=(np.int64(n), edges),
            seeds=[0],
        ).run()
        assert len(result) == 1
        assert result.run.network.n == 12

    def test_callable_sources_are_named_from_their_provenance(self):
        from repro.core.experiment import Experiment
        from repro.graphs import generators as gen

        result = Experiment(
            problem=problems.MIS,
            algorithm=LubyMIS,
            graphs=[
                lambda: gen.fast_gnp_edges(60, 0.1, seed=1, as_arrays=True),
                lambda: gen.path_edges(20),  # no provenance -> positional
            ],
            seeds=[0],
        ).run()
        assert [run.name for run in result] == ["fast_gnp", "graph-1"]

    def test_float_endpoint_arrays_are_rejected_not_truncated(self):
        import numpy as np

        from repro.local.network import Network

        with pytest.raises(ValueError, match="integer array"):
            Network.from_endpoint_arrays(3, np.array([0.9]), np.array([1.2]))

    def test_duplicate_family_names_are_disambiguated(self):
        from repro.core.experiment import Experiment
        from repro.graphs import generators as gen

        result = Experiment(
            problem=problems.MIS,
            algorithm=LubyMIS,
            graphs=[
                gen.fast_gnp_edges(40, 0.1, seed=1, as_arrays=True),
                gen.fast_gnp_edges(40, 0.1, seed=2, as_arrays=True),
            ],
            seeds=[0],
        ).run()
        assert [run.name for run in result] == ["fast_gnp", "fast_gnp-1"]

    def test_seeds_with_base_seed_rejected(self, small_network):
        from repro.core.experiment import Experiment

        with pytest.raises(ValueError, match="not both"):
            Experiment(
                problem=problems.MIS,
                algorithm=LubyMIS,
                graphs=small_network,
                seeds=[0, 1],
                seed=42,
            )
