"""Tests for completion-time semantics (Definition 1) and complexity metrics."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core import metrics, problems
from repro.core.trace import ExecutionTrace
from repro.local.network import Network


def _node_problem():
    return problems.MIS


def _edge_problem():
    return problems.MAXIMAL_MATCHING


def _trace_for_node_problem():
    """A hand-built trace: path 0-1-2, commits at rounds 0, 2, 4."""
    net = Network.from_graph(nx.path_graph(3))
    trace = ExecutionTrace(network=net, problem=_node_problem(), rounds=4, algorithm_name="manual")
    trace.node_outputs = {0: True, 1: False, 2: True}
    trace.node_commit_round = {0: 0, 1: 2, 2: 4}
    return trace


def _trace_for_edge_problem():
    """Path 0-1-2-3 with a matching on (0,1); edges decided at rounds 1 and 3."""
    net = Network.from_graph(nx.path_graph(4))
    trace = ExecutionTrace(network=net, problem=_edge_problem(), rounds=3, algorithm_name="manual")
    trace.edge_outputs = {(0, 1): True, (1, 2): False, (2, 3): True}
    trace.edge_commit_round = {(0, 1): 1, (1, 2): 1, (2, 3): 3}
    return trace


class TestCompletionSemantics:
    def test_node_problem_node_completion_is_own_commit(self):
        trace = _trace_for_node_problem()
        assert trace.node_completion_times() == [0, 2, 4]

    def test_node_problem_edge_completion_is_max_of_endpoints(self):
        trace = _trace_for_node_problem()
        # Edges (0,1) and (1,2): completion = max of endpoint commits.
        assert trace.edge_completion_times() == [2, 4]

    def test_edge_problem_edge_completion_is_own_commit(self):
        trace = _trace_for_edge_problem()
        assert trace.edge_completion_times() == [1, 1, 3]

    def test_edge_problem_node_completion_is_max_incident_edge(self):
        trace = _trace_for_edge_problem()
        # Node 0 waits for edge (0,1); node 2 waits for edges (1,2) and (2,3).
        assert trace.node_completion_times() == [1, 1, 3, 3]

    def test_worst_case_is_global_max(self):
        assert _trace_for_node_problem().worst_case_rounds() == 4
        assert _trace_for_edge_problem().worst_case_rounds() == 3

    def test_validation_passes_for_consistent_outputs(self):
        assert _trace_for_node_problem().validate()
        assert _trace_for_edge_problem().validate()

    def test_require_valid_raises_on_bad_solution(self):
        trace = _trace_for_node_problem()
        trace.node_outputs[1] = True  # now 0 and 1 are adjacent and both selected
        with pytest.raises(AssertionError):
            trace.require_valid()

    def test_selected_accessors(self):
        assert _trace_for_node_problem().selected_nodes() == [0, 2]
        assert _trace_for_edge_problem().selected_edges() == [(0, 1), (2, 3)]

    def test_summary_contains_headline_numbers(self):
        summary = _trace_for_node_problem().summary()
        assert summary["n"] == 3 and summary["worst_case"] == 4
        assert summary["node_averaged"] == pytest.approx(2.0)


class TestMetrics:
    def test_node_averaged_single_trace(self):
        assert metrics.node_averaged_complexity(_trace_for_node_problem()) == pytest.approx(2.0)

    def test_edge_averaged_single_trace(self):
        assert metrics.edge_averaged_complexity(_trace_for_edge_problem()) == pytest.approx(5 / 3)

    def test_expectation_over_trials(self):
        a = _trace_for_node_problem()
        b = _trace_for_node_problem()
        b.node_commit_round = {0: 0, 1: 0, 2: 0}
        assert metrics.node_averaged_complexity([a, b]) == pytest.approx(1.0)

    def test_node_expected_is_max_over_nodes(self):
        a = _trace_for_node_problem()
        assert metrics.node_expected_complexity(a) == pytest.approx(4.0)

    def test_weighted_default_equals_expected(self):
        a = _trace_for_node_problem()
        assert metrics.weighted_node_averaged_complexity(a) == metrics.node_expected_complexity(a)

    def test_weighted_with_explicit_weights(self):
        a = _trace_for_node_problem()
        value = metrics.weighted_node_averaged_complexity(a, {0: 1.0, 1: 0.0, 2: 1.0})
        assert value == pytest.approx(2.0)

    def test_weighted_rejects_zero_mass(self):
        with pytest.raises(ValueError):
            metrics.weighted_node_averaged_complexity(_trace_for_node_problem(), {0: 0.0})

    def test_weighted_edge_average(self):
        t = _trace_for_edge_problem()
        value = metrics.weighted_edge_averaged_complexity(t, {(0, 1): 1.0, (1, 2): 0.0, (2, 3): 1.0})
        assert value == pytest.approx(2.0)

    def test_hierarchy_is_monotone(self):
        chain = metrics.complexity_hierarchy(_trace_for_node_problem())
        assert chain["avg"] <= chain["weighted_avg"] <= chain["expected"] <= chain["worst"]

    def test_measure_bundles_everything(self):
        m = metrics.measure(_trace_for_node_problem())
        assert m.n == 3 and m.m == 2 and m.trials == 1
        assert m.node_averaged <= m.node_expected <= m.worst_case
        assert "node_averaged" in m.as_dict()

    def test_empty_trace_list_rejected(self):
        with pytest.raises(ValueError):
            metrics.node_averaged_complexity([])

    def test_mismatched_networks_rejected(self):
        a = _trace_for_node_problem()
        net = Network.from_graph(nx.path_graph(7))
        b = ExecutionTrace(network=net, problem=_node_problem(), rounds=0)
        with pytest.raises(ValueError):
            metrics.node_averaged_complexity([a, b])


class TestMeasuredAlgorithmsSatisfyHierarchy:
    @pytest.mark.parametrize("algorithm_name", ["luby", "ruling", "matching"])
    def test_hierarchy_on_real_executions(self, runner, algorithm_name, network_factory):
        from repro.algorithms.mis.luby import LubyMIS
        from repro.algorithms.ruling_set.randomized import RandomizedTwoTwoRulingSet
        from repro.algorithms.matching.randomized import RandomizedMaximalMatching
        from repro.core.experiment import run_trials

        net = network_factory(nx.gnp_random_graph(40, 0.15, seed=8), seed=1)
        if algorithm_name == "luby":
            factory, problem = LubyMIS, problems.MIS
        elif algorithm_name == "ruling":
            factory, problem = RandomizedTwoTwoRulingSet, problems.ruling_set(2, 2)
        else:
            factory, problem = RandomizedMaximalMatching, problems.MAXIMAL_MATCHING
        traces = run_trials(factory, net, problem, trials=3, seed=0, runner=runner)
        chain = metrics.complexity_hierarchy(traces)
        assert chain["avg"] <= chain["weighted_avg"] + 1e-9
        assert chain["weighted_avg"] <= chain["expected"] + 1e-9
        assert chain["expected"] <= chain["worst"] + 1e-9
