"""Tests for the problem specifications and validity checkers."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import problems
from repro.algorithms.mis.sequential import sequential_greedy_mis
from repro.algorithms.matching.sequential import sequential_greedy_matching


class TestMISValidation:
    def test_accepts_greedy_mis(self):
        g = nx.gnp_random_graph(30, 0.2, seed=1)
        mis = sequential_greedy_mis(g)
        outputs = {v: v in mis for v in g.nodes()}
        assert problems.MIS.validate(g, outputs, {})

    def test_rejects_non_independent(self):
        g = nx.path_graph(3)
        outputs = {0: True, 1: True, 2: False}
        result = problems.MIS.validate(g, outputs, {})
        assert not result and "independent" in result.reason

    def test_rejects_non_maximal(self):
        g = nx.path_graph(5)
        outputs = {v: False for v in g.nodes()}
        outputs[0] = True
        result = problems.MIS.validate(g, outputs, {})
        assert not result and "maximal" in result.reason

    def test_rejects_missing_outputs(self):
        g = nx.path_graph(3)
        result = problems.MIS.validate(g, {0: True}, {})
        assert not result and "missing" in result.reason

    def test_empty_graph_trivially_valid(self):
        g = nx.empty_graph(4)
        outputs = {v: True for v in g.nodes()}
        assert problems.MIS.validate(g, outputs, {})


class TestRulingSetValidation:
    def test_mis_is_a_21_ruling_set(self):
        g = nx.gnp_random_graph(25, 0.2, seed=2)
        mis = sequential_greedy_mis(g)
        outputs = {v: v in mis for v in g.nodes()}
        assert problems.ruling_set(2, 1).validate(g, outputs, {})

    def test_two_two_ruling_set_on_path(self):
        g = nx.path_graph(7)
        outputs = {v: v in {0, 3, 6} for v in g.nodes()}
        assert problems.ruling_set(2, 2).validate(g, outputs, {})

    def test_violated_independence(self):
        g = nx.path_graph(4)
        outputs = {0: True, 1: True, 2: False, 3: False}
        result = problems.ruling_set(2, 2).validate(g, outputs, {})
        assert not result and "distance" in result.reason

    def test_violated_domination(self):
        g = nx.path_graph(9)
        outputs = {v: v == 0 for v in g.nodes()}
        result = problems.ruling_set(2, 2).validate(g, outputs, {})
        assert not result and "no ruler" in result.reason

    def test_larger_alpha(self):
        g = nx.cycle_graph(9)
        outputs = {v: v in {0, 3, 6} for v in g.nodes()}
        assert problems.ruling_set(3, 2).validate(g, outputs, {})
        outputs_bad = {v: v in {0, 2, 5} for v in g.nodes()}
        assert not problems.ruling_set(3, 2).validate(g, outputs_bad, {})

    def test_empty_ruling_set_rejected(self):
        g = nx.path_graph(3)
        outputs = {v: False for v in g.nodes()}
        assert not problems.ruling_set(2, 2).validate(g, outputs, {})

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            problems.ruling_set(0, 1)

    def test_params_recorded(self):
        spec = problems.ruling_set(2, 5)
        assert spec.params == {"alpha": 2, "beta": 5}
        assert "(2,5)" in spec.name


class TestMatchingValidation:
    def test_accepts_greedy_matching(self):
        g = nx.gnp_random_graph(30, 0.15, seed=3)
        matching = sequential_greedy_matching(g)
        outputs = {tuple(sorted(e)): tuple(sorted(e)) in matching for e in g.edges()}
        assert problems.MAXIMAL_MATCHING.validate(g, {}, outputs)

    def test_rejects_overlapping_edges(self):
        g = nx.path_graph(4)
        outputs = {(0, 1): True, (1, 2): True, (2, 3): False}
        result = problems.MAXIMAL_MATCHING.validate(g, {}, outputs)
        assert not result and "matching" in result.reason

    def test_rejects_non_maximal(self):
        g = nx.path_graph(4)
        outputs = {(0, 1): True, (1, 2): False, (2, 3): False}
        result = problems.MAXIMAL_MATCHING.validate(g, {}, outputs)
        assert not result and "added" in result.reason

    def test_rejects_matched_non_edge(self):
        g = nx.path_graph(4)
        outputs = {(0, 1): True, (1, 2): False, (2, 3): True, (0, 3): True}
        result = problems.MAXIMAL_MATCHING.validate(g, {}, outputs)
        assert not result

    def test_missing_edge_outputs(self):
        g = nx.path_graph(3)
        result = problems.MAXIMAL_MATCHING.validate(g, {}, {(0, 1): True})
        assert not result and "missing" in result.reason


class TestColoringValidation:
    def test_proper_coloring_accepted(self):
        g = nx.cycle_graph(8)
        outputs = {v: v % 2 for v in g.nodes()}
        assert problems.coloring(3).validate(g, outputs, {})

    def test_monochromatic_edge_rejected(self):
        g = nx.path_graph(3)
        outputs = {0: 1, 1: 1, 2: 0}
        result = problems.coloring(3).validate(g, outputs, {})
        assert not result and "monochromatic" in result.reason

    def test_palette_bound_enforced(self):
        g = nx.path_graph(2)
        outputs = {0: 0, 1: 7}
        assert not problems.coloring(3).validate(g, outputs, {})
        assert problems.coloring(8).validate(g, outputs, {})

    def test_unbounded_palette(self):
        g = nx.path_graph(2)
        outputs = {0: "red", 1: "blue"}
        assert problems.coloring(None).validate(g, outputs, {})


class TestSinklessOrientationValidation:
    def test_cycle_orientation_valid(self):
        # Orient a 3-regular graph along an Euler-style pattern: every node of
        # the complete graph K4 gets out-degree >= 1 with this orientation.
        g = nx.complete_graph(4)
        outputs = {(0, 1): 1, (0, 2): 0, (0, 3): 3, (1, 2): 2, (1, 3): 1, (2, 3): 3}
        assert problems.SINKLESS_ORIENTATION.validate(g, {}, outputs)

    def test_sink_detected(self):
        g = nx.complete_graph(4)
        # All edges incident to node 0 point towards node 0 -> 0 has out-degree 0.
        outputs = {(0, 1): 0, (0, 2): 0, (0, 3): 0, (1, 2): 2, (1, 3): 1, (2, 3): 3}
        result = problems.SINKLESS_ORIENTATION.validate(g, {}, outputs)
        assert not result and "sink" in result.reason

    def test_low_degree_nodes_exempt(self):
        g = nx.path_graph(3)  # degrees 1, 2, 1 are all below 3
        outputs = {(0, 1): 0, (1, 2): 2}
        assert problems.SINKLESS_ORIENTATION.validate(g, {}, outputs)

    def test_head_must_be_endpoint(self):
        g = nx.complete_graph(4)
        outputs = {(0, 1): 9, (0, 2): 0, (0, 3): 3, (1, 2): 2, (1, 3): 1, (2, 3): 3}
        result = problems.SINKLESS_ORIENTATION.validate(g, {}, outputs)
        assert not result and "endpoint" in result.reason


class TestPropertyBased:
    @given(st.integers(min_value=4, max_value=40), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_greedy_mis_always_validates(self, n, seed):
        g = nx.gnp_random_graph(n, 0.2, seed=seed)
        mis = sequential_greedy_mis(g)
        outputs = {v: v in mis for v in g.nodes()}
        assert problems.MIS.validate(g, outputs, {})

    @given(st.integers(min_value=4, max_value=40), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_greedy_matching_always_validates(self, n, seed):
        g = nx.gnp_random_graph(n, 0.2, seed=seed)
        matching = sequential_greedy_matching(g)
        outputs = {tuple(sorted(e)): tuple(sorted(e)) in matching for e in g.edges()}
        assert problems.MAXIMAL_MATCHING.validate(g, {}, outputs)

    @given(st.integers(min_value=3, max_value=30))
    @settings(max_examples=20, deadline=None)
    def test_every_mis_of_a_cycle_has_at_least_n_over_3_nodes(self, n):
        g = nx.cycle_graph(n)
        mis = sequential_greedy_mis(g)
        assert len(mis) >= n // 3
