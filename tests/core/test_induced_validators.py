"""Differential tests for the vectorised induced-survivor validators.

``ProblemSpec.induced_validator`` is a pure-performance hook: for any
network, output configuration, and crash set, ``csr_is_induced_mis`` /
``csr_is_induced_maximal_matching`` must return the same verdict the
generic subnetwork-materialising fallback does.  These tests fuzz random
configurations through both paths (and through the array-mask input form
the engines use) and require verdict agreement everywhere.
"""

from __future__ import annotations

import random
from dataclasses import replace

import numpy as np
import pytest

from repro.core import problems
from repro.core.problems import MISSING
from repro.local.network import Network


def random_network(rng: random.Random) -> Network:
    n = rng.randrange(2, 25)
    edges = [
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if rng.random() < rng.choice((0.1, 0.3, 0.6))
    ]
    return Network.from_edges(n, edges)


def random_crashed(rng: random.Random, n: int) -> list:
    return [v for v in range(n) if rng.random() < 0.25]


def slots_and_arrays(rng: random.Random, count: int):
    """Random outputs in both interchange forms: MISSING-marked slots and
    (values, committed) bool arrays describing the same configuration."""
    slots = []
    values = np.zeros(count, dtype=bool)
    committed = np.zeros(count, dtype=bool)
    for i in range(count):
        pick = rng.random()
        if pick < 0.25:
            slots.append(MISSING)
        else:
            value = pick < 0.7
            slots.append(value)
            values[i] = value
            committed[i] = True
    return slots, values, committed


@pytest.mark.parametrize("seed", range(8))
class TestVerdictAgreement:
    def check(self, spec, fallback_spec, nodes: bool, seed: int) -> None:
        rng = random.Random(seed)
        agreements = 0
        for _ in range(40):
            network = random_network(rng)
            crashed = random_crashed(rng, network.n)
            count = network.n if nodes else network.m
            slots, values, committed = slots_and_arrays(rng, count)
            kwargs = {"node_outputs": slots} if nodes else {"edge_outputs": slots}
            want = fallback_spec.validate_induced(network, crashed=crashed, **kwargs)
            got = spec.validate_induced(network, crashed=crashed, **kwargs)
            assert bool(got) == bool(want), (
                f"verdict drift on n={network.n}, m={network.m}, "
                f"crashed={crashed}: fast={got!r} fallback={want!r}"
            )
            if nodes:
                masked = spec.validate_induced(
                    network,
                    node_outputs=values,
                    crashed=crashed,
                    node_committed=committed,
                )
            else:
                masked = spec.validate_induced(
                    network,
                    edge_outputs=values,
                    crashed=crashed,
                    edge_committed=committed,
                )
            assert bool(masked) == bool(want)
            agreements += 1
        assert agreements == 40

    def test_mis_fast_path_agrees_with_fallback(self, seed):
        spec = problems.MIS
        assert spec.induced_validator is not None
        self.check(spec, replace(spec, induced_validator=None), nodes=True, seed=seed)

    def test_matching_fast_path_agrees_with_fallback(self, seed):
        spec = problems.MAXIMAL_MATCHING
        assert spec.induced_validator is not None
        self.check(
            spec, replace(spec, induced_validator=None), nodes=False, seed=seed + 100
        )


class TestCsrValidatorSemantics:
    def test_induced_mis_accepts_a_valid_survivor_configuration(self):
        # Path 0-1-2-3 with node 1 crashed: survivors 0,2,3; selecting {0, 3}
        # leaves 2 covered by 3 and independent.
        network = Network.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        values = np.array([True, True, False, True])  # crashed node's value ignored
        committed = np.ones(4, dtype=bool)
        result = problems.csr_is_induced_mis(network, values, committed, [1])
        assert bool(result)

    def test_induced_mis_rejects_uncovered_survivors(self):
        network = Network.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        values = np.array([False, False, False, False])
        committed = np.ones(4, dtype=bool)
        result = problems.csr_is_induced_mis(network, values, committed, [1])
        assert not bool(result)
        assert "uncovered" in result.reason

    def test_induced_mis_rejects_missing_survivor_outputs(self):
        network = Network.from_edges(3, [(0, 1), (1, 2)])
        values = np.zeros(3, dtype=bool)
        committed = np.array([True, True, False])
        result = problems.csr_is_induced_mis(network, values, committed, [0])
        assert not bool(result)
        assert "missing node outputs" in result.reason

    def test_induced_matching_rejects_addable_edges(self):
        # Triangle with no crash on the relevant edge: nothing selected but
        # the surviving edge (1, 2) could be added.
        network = Network.from_edges(3, [(0, 1), (0, 2), (1, 2)])
        values = np.zeros(3, dtype=bool)
        committed = np.ones(3, dtype=bool)
        result = problems.csr_is_induced_maximal_matching(
            network, values, committed, [0]
        )
        assert not bool(result)
        assert "added" in result.reason

    def test_induced_matching_rejects_non_matchings(self):
        network = Network.from_edges(3, [(0, 1), (0, 2), (1, 2)])
        values = np.ones(3, dtype=bool)
        committed = np.ones(3, dtype=bool)
        result = problems.csr_is_induced_maximal_matching(
            network, values, committed, []
        )
        assert not bool(result)
        assert "matching" in result.reason
