"""CSR-native validators must agree with their networkx reference twins.

The validators in :mod:`repro.core.problems` exist in two implementations:
the seed networkx functions (the executable specification) and the CSR
fast-path functions consuming a :class:`Network`'s ``indptr``/``indices``
views.  These property tests drive both over random graphs with **valid**
outputs (produced by simple sequential solvers) and **deliberately
corrupted** outputs (flipped memberships, dropped entries, stray edges,
palette violations, re-oriented edges) and assert that the two paths always
reach the same verdict.
"""

from __future__ import annotations

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import problems
from repro.local.network import Network

# Verdict agreement matters; failure *reasons* may name different witnesses.


def _random_graph(n: int, p_numerator: int, seed: int) -> nx.Graph:
    p = p_numerator / 100.0
    return nx.gnp_random_graph(n, p, seed=seed)


def _network(graph: nx.Graph) -> Network:
    return Network.from_graph(graph)


def _greedy_mis(graph: nx.Graph, rng: random.Random) -> dict:
    order = list(graph.nodes())
    rng.shuffle(order)
    selected = set()
    for v in order:
        if not any(u in selected for u in graph.neighbors(v)):
            selected.add(v)
    return {v: v in selected for v in graph.nodes()}


def _greedy_matching(graph: nx.Graph, rng: random.Random) -> dict:
    edges = [(u, v) if u < v else (v, u) for u, v in graph.edges()]
    rng.shuffle(edges)
    matched = set()
    outputs = {}
    for u, v in sorted(edges, key=lambda e: rng.random()):
        take = u not in matched and v not in matched
        if take:
            matched.add(u)
            matched.add(v)
        outputs[(u, v)] = take
    return outputs


def _greedy_coloring(graph: nx.Graph) -> dict:
    colors = {}
    for v in sorted(graph.nodes()):
        used = {colors[u] for u in graph.neighbors(v) if u in colors}
        c = 0
        while c in used:
            c += 1
        colors[v] = c
    return colors


def _orientation(graph: nx.Graph, rng: random.Random, valid: bool) -> dict:
    """Orient every edge; when ``valid``, guarantee every node an out-edge.

    The valid construction anchors each connected component on a cycle
    (every component of a min-degree-≥2 graph has one): cycle edges are
    oriented around the cycle, and every off-cycle vertex orients its
    BFS-discovery edge away from itself towards the cycle, so no vertex is
    a sink.  Leftover edges are oriented randomly.
    """
    outputs = {}
    if valid:
        for component in nx.connected_components(graph):
            sub = graph.subgraph(component)
            cycle = nx.find_cycle(sub)
            on_cycle = [u for u, _ in cycle]
            for u, v in cycle:  # u -> v along the cycle: u gets an out-edge
                outputs[(u, v) if u < v else (v, u)] = v
            seen = set(on_cycle)
            frontier = list(on_cycle)
            while frontier:
                parent = frontier.pop()
                for w in sub.neighbors(parent):
                    if w not in seen:
                        seen.add(w)
                        # w -> parent: the discovered vertex points rootward.
                        outputs[(w, parent) if w < parent else (parent, w)] = parent
                        frontier.append(w)
    for u, v in ((min(e), max(e)) for e in graph.edges()):
        if (u, v) not in outputs:
            outputs[(u, v)] = rng.choice((u, v))
    return outputs


def _agree(spec: problems.ProblemSpec, graph: nx.Graph, node_out, edge_out) -> bool:
    """Assert reference and CSR paths agree; return the shared verdict."""
    network = _network(graph)
    reference = spec.validate(graph, node_out, edge_out)
    fast = spec.validate_network(network, node_out, edge_out)
    assert bool(reference) == bool(fast), (
        f"{spec.name}: nx={reference} csr={fast} on n={graph.number_of_nodes()}"
    )
    # The Network overload of validate() must dispatch to the same fast path.
    assert bool(spec.validate(network, node_out, edge_out)) == bool(fast)
    return bool(fast)


graph_params = given(
    n=st.integers(min_value=1, max_value=32),
    p=st.integers(min_value=0, max_value=60),
    seed=st.integers(min_value=0, max_value=10_000),
)


class TestMISAgreement:
    @graph_params
    @settings(max_examples=60, deadline=None)
    def test_valid_and_corrupted(self, n, p, seed):
        graph = _random_graph(n, p, seed)
        rng = random.Random(seed)
        outputs = _greedy_mis(graph, rng)
        assert _agree(problems.MIS, graph, outputs, {})

        if n >= 2:
            # Corruption 1: flip one node's membership.
            v = rng.randrange(n)
            flipped = dict(outputs)
            flipped[v] = not flipped[v]
            _agree(problems.MIS, graph, flipped, {})
            # Corruption 2: drop one node's output entirely (missing check).
            dropped = dict(outputs)
            del dropped[v]
            assert not _agree(problems.MIS, graph, dropped, {})
            # Corruption 3: select everything (independence must fail if any edge).
            all_in = {u: True for u in graph.nodes()}
            _agree(problems.MIS, graph, all_in, {})
            # Corruption 4: select nothing (maximality must fail if any node).
            none_in = {u: False for u in graph.nodes()}
            _agree(problems.MIS, graph, none_in, {})


class TestRulingSetAgreement:
    @graph_params
    @settings(max_examples=40, deadline=None)
    def test_mis_is_2_1_ruling_set(self, n, p, seed):
        graph = _random_graph(n, p, seed)
        rng = random.Random(seed)
        outputs = _greedy_mis(graph, rng)
        spec = problems.ruling_set(2, 1)
        assert _agree(spec, graph, outputs, {})
        if n >= 2:
            v = rng.randrange(n)
            flipped = dict(outputs)
            flipped[v] = not flipped[v]
            _agree(spec, graph, flipped, {})

    @pytest.mark.parametrize("alpha,beta", [(2, 1), (2, 2), (3, 2), (3, 3), (1, 1)])
    def test_path_spacings(self, alpha, beta):
        graph = nx.path_graph(13)
        for spacing in (1, 2, 3, 4):
            outputs = {v: v % spacing == 0 for v in graph.nodes()}
            _agree(problems.ruling_set(alpha, beta), graph, outputs, {})

    def test_empty_set_agrees(self):
        graph = nx.cycle_graph(6)
        outputs = {v: False for v in graph.nodes()}
        assert not _agree(problems.ruling_set(2, 2), graph, outputs, {})


class TestMatchingAgreement:
    @graph_params
    @settings(max_examples=60, deadline=None)
    def test_valid_and_corrupted(self, n, p, seed):
        graph = _random_graph(n, p, seed)
        rng = random.Random(seed)
        outputs = _greedy_matching(graph, rng)
        assert _agree(problems.MAXIMAL_MATCHING, graph, {}, outputs)

        edges = list(outputs)
        if edges:
            # Corruption 1: un-match one matched edge (maximality may break).
            e = rng.choice(edges)
            toggled = dict(outputs)
            toggled[e] = not toggled[e]
            _agree(problems.MAXIMAL_MATCHING, graph, {}, toggled)
            # Corruption 2: drop an edge entry (missing check).
            dropped = dict(outputs)
            del dropped[e]
            assert not _agree(problems.MAXIMAL_MATCHING, graph, {}, dropped)
            # Corruption 3: match every edge (conflicts unless m <= ...).
            all_in = {e2: True for e2 in outputs}
            _agree(problems.MAXIMAL_MATCHING, graph, {}, all_in)

    def test_stray_edge_agreement(self):
        graph = nx.path_graph(4)  # edges (0,1),(1,2),(2,3)
        base = {(0, 1): True, (1, 2): False, (2, 3): True}
        assert _agree(problems.MAXIMAL_MATCHING, graph, {}, base)
        # A truthy entry for a non-edge must invalidate on both paths.
        truthy_stray = dict(base)
        truthy_stray[(0, 3)] = True
        assert not _agree(problems.MAXIMAL_MATCHING, graph, {}, truthy_stray)
        # A falsy stray entry is ignored on both paths.
        falsy_stray = dict(base)
        falsy_stray[(0, 3)] = False
        assert _agree(problems.MAXIMAL_MATCHING, graph, {}, falsy_stray)


class TestColoringAgreement:
    @graph_params
    @settings(max_examples=60, deadline=None)
    def test_valid_and_corrupted(self, n, p, seed):
        graph = _random_graph(n, p, seed)
        rng = random.Random(seed)
        colors = _greedy_coloring(graph)
        palette = max(colors.values(), default=0) + 1
        spec = problems.coloring(palette)
        assert _agree(spec, graph, colors, {})

        if n >= 2:
            # Corruption 1: copy a neighbour's colour (monochromatic edge).
            if graph.number_of_edges():
                u, v = next(iter(graph.edges()))
                clash = dict(colors)
                clash[u] = clash[v]
                assert not _agree(spec, graph, clash, {})
            # Corruption 2: colour outside the palette.
            v = rng.randrange(n)
            out_of_palette = dict(colors)
            out_of_palette[v] = palette + 3
            _agree(spec, graph, out_of_palette, {})
            # Corruption 3: unbounded palette accepts any distinct labels.
            assert _agree(problems.coloring(None), graph, colors, {})


class TestSinklessOrientationAgreement:
    @given(
        n=st.integers(min_value=4, max_value=24),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_valid_and_corrupted(self, n, seed):
        if (n * 3) % 2:
            n += 1
        graph = nx.random_regular_graph(3, n, seed=seed)
        rng = random.Random(seed)
        outputs = _orientation(graph, rng, valid=True)
        assert _agree(problems.SINKLESS_ORIENTATION, graph, {}, outputs)

        # Corruption 1: random orientation (may create a sink; both agree).
        _agree(problems.SINKLESS_ORIENTATION, graph, {}, _orientation(graph, rng, False))
        # Corruption 2: point every edge at its smaller endpoint → the
        # largest vertex is a sink.
        sink = {e: min(e) for e in outputs}
        assert not _agree(problems.SINKLESS_ORIENTATION, graph, {}, sink)
        # Corruption 3: head is not an endpoint.
        bad_head = dict(outputs)
        e = next(iter(bad_head))
        bad_head[e] = n + 5
        assert not _agree(problems.SINKLESS_ORIENTATION, graph, {}, bad_head)
        # Corruption 4: drop an entry (missing check).
        dropped = dict(outputs)
        del dropped[e]
        assert not _agree(problems.SINKLESS_ORIENTATION, graph, {}, dropped)

    def test_low_degree_nodes_exempt(self):
        graph = nx.path_graph(3)  # all degrees < 3: nothing can be a sink
        outputs = {(0, 1): 0, (1, 2): 1}
        assert _agree(problems.SINKLESS_ORIENTATION, graph, {}, outputs)


class TestSlotSequenceInputs:
    """validate_network accepts flat per-slot sequences with MISSING."""

    def test_node_slots(self):
        graph = nx.cycle_graph(5)
        network = _network(graph)
        outputs = _greedy_mis(graph, random.Random(0))
        slots = [outputs[v] for v in range(5)]
        assert problems.MIS.validate_network(network, slots, None)
        slots_missing = list(slots)
        slots_missing[2] = problems.MISSING
        result = problems.MIS.validate_network(network, slots_missing, None)
        assert not result and "missing node outputs" in result.reason

    def test_edge_slots(self):
        graph = nx.path_graph(4)
        network = _network(graph)
        slots = [True, False, True]  # edges (0,1),(1,2),(2,3)
        assert problems.MAXIMAL_MATCHING.validate_network(network, None, slots)
        slots_missing = [True, problems.MISSING, True]
        result = problems.MAXIMAL_MATCHING.validate_network(network, None, slots_missing)
        assert not result and "missing edge outputs" in result.reason

    def test_wrong_length_rejected(self):
        network = _network(nx.cycle_graph(4))
        with pytest.raises(ValueError):
            problems.MIS.validate_network(network, [True, False], None)

    def test_fallback_without_csr_validator(self):
        """Custom specs without a CSR validator route through the nx path."""
        spec = problems.ProblemSpec(
            name="custom-mis",
            labels_nodes=True,
            labels_edges=False,
            validator=lambda g, nodes, edges: problems.is_maximal_independent_set(g, nodes),
        )
        graph = nx.cycle_graph(6)
        network = _network(graph)
        outputs = _greedy_mis(graph, random.Random(1))
        assert spec.validate_network(network, outputs, None)
        outputs[0] = outputs[1] = True
        assert not spec.validate_network(network, outputs, None)


class TestValidateNetworkEdgeCases:
    """Regressions for ISSUE 3: short slot sequences and explicit MISSING.

    The MISSING sentinel means "never committed", so an explicit
    ``{key: MISSING}`` mapping entry must behave exactly like an absent key
    on *both* validator paths.  Before PR 3 the nx reference path treated
    the (truthy) sentinel object as a real committed value — an explicit
    MISSING membership flag counted as "selected" for MIS — while the CSR
    path reported a missing output: a verdict disagreement.  ``validate``
    now strips sentinel entries before consulting the reference validators.
    """

    def test_node_sequence_shorter_than_n_raises(self):
        network = _network(nx.cycle_graph(6))
        with pytest.raises(ValueError, match="node output slots"):
            problems.MIS.validate_network(network, [True] * 5, None)

    def test_node_sequence_longer_than_n_raises(self):
        network = _network(nx.cycle_graph(6))
        with pytest.raises(ValueError, match="node output slots"):
            problems.MIS.validate_network(network, [True] * 7, None)

    def test_edge_sequence_wrong_length_raises(self):
        network = _network(nx.path_graph(4))  # m = 3
        with pytest.raises(ValueError, match="edge output slots"):
            problems.MAXIMAL_MATCHING.validate_network(network, None, [True, False])

    def test_mapping_with_explicit_missing_node_agrees_with_reference(self):
        graph = nx.cycle_graph(5)
        network = _network(graph)
        outputs = _greedy_mis(graph, random.Random(3))
        outputs[0] = problems.MISSING  # explicitly "never committed"
        csr = problems.MIS.validate_network(network, outputs, None)
        ref = problems.MIS.validate(graph, outputs, None)
        assert bool(csr) == bool(ref) == False  # noqa: E712 - verdict agreement
        assert "missing node outputs" in csr.reason
        assert "missing node outputs" in ref.reason

    def test_mapping_with_explicit_missing_edge_agrees_with_reference(self):
        graph = nx.path_graph(4)
        network = _network(graph)
        outputs = {(0, 1): True, (1, 2): problems.MISSING, (2, 3): True}
        csr = problems.MAXIMAL_MATCHING.validate_network(network, None, outputs)
        ref = problems.MAXIMAL_MATCHING.validate(graph, None, outputs)
        assert bool(csr) == bool(ref) == False  # noqa: E712
        assert "missing edge outputs" in csr.reason
        assert "missing edge outputs" in ref.reason

    def test_stray_edge_with_missing_value_is_ignored_on_both_paths(self):
        """A non-edge key carrying the sentinel is not a stray matched edge."""
        graph = nx.path_graph(4)
        network = _network(graph)
        outputs = {(0, 1): True, (1, 2): False, (2, 3): True, (0, 3): problems.MISSING}
        csr = problems.MAXIMAL_MATCHING.validate_network(network, None, outputs)
        ref = problems.MAXIMAL_MATCHING.validate(graph, None, outputs)
        assert bool(csr) == bool(ref) == True  # noqa: E712

    def test_stray_edge_with_real_value_still_fails_on_both_paths(self):
        graph = nx.path_graph(4)
        network = _network(graph)
        outputs = {(0, 1): True, (1, 2): False, (2, 3): True, (0, 3): True}
        csr = problems.MAXIMAL_MATCHING.validate_network(network, None, outputs)
        ref = problems.MAXIMAL_MATCHING.validate(graph, None, outputs)
        assert bool(csr) == bool(ref) == False  # noqa: E712
        assert "not in the graph" in csr.reason

    def test_explicit_missing_everywhere_reads_as_empty(self):
        """All-sentinel mappings behave like empty mappings on both paths."""
        graph = nx.cycle_graph(4)
        network = _network(graph)
        node_out = {v: problems.MISSING for v in range(4)}
        csr = problems.MIS.validate_network(network, node_out, None)
        ref = problems.MIS.validate(graph, node_out, None)
        assert bool(csr) == bool(ref) == False  # noqa: E712
        assert "missing node outputs" in csr.reason and "missing node outputs" in ref.reason
