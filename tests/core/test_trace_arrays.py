"""Array-backed ExecutionTrace storage and its lazy dict views.

The runner stores outputs and commit rounds in flat per-slot arrays
(:meth:`ExecutionTrace.from_arrays`); the historical dict attributes are
derived lazily.  Hand-built traces (tests, the vendored seed pipeline) still
construct dict-first.  These tests pin that the two representations are
interchangeable: same dict views, same completion times, same validation
verdicts, and that the hot paths never export the topology to networkx.
"""

from __future__ import annotations

import random
from array import array

import networkx as nx
import pytest

from repro.algorithms.mis.luby import LubyMIS
from repro.core import problems
from repro.core.experiment import run_trials
from repro.core.metrics import measure
from repro.core.trace import ExecutionTrace
from repro.graphs import generators as gen
from repro.local.network import Network
from repro.local.runner import Runner


def _mis_trace_pair():
    """The same MIS execution result built dict-first and array-first."""
    network = Network.from_edges(*gen.cycle_edges(6))
    node_outputs = {0: True, 1: False, 2: True, 3: False, 4: True, 5: False}
    node_rounds_dict = {0: 0, 1: 1, 2: 0, 3: 2, 4: 1, 5: 1}
    dict_trace = ExecutionTrace(
        network=network,
        problem=problems.MIS,
        node_outputs=dict(node_outputs),
        node_commit_round=dict(node_rounds_dict),
        rounds=3,
        algorithm_name="manual",
    )
    node_values = [node_outputs[v] for v in range(6)]
    node_rounds = array("q", [node_rounds_dict[v] for v in range(6)])
    array_trace = ExecutionTrace.from_arrays(
        network,
        problems.MIS,
        node_values,
        node_rounds,
        [None] * network.m,
        array("q", [-1]) * network.m,
        rounds=3,
        algorithm_name="manual",
    )
    return dict_trace, array_trace


class TestRepresentationEquivalence:
    def test_dict_views_match(self):
        dict_trace, array_trace = _mis_trace_pair()
        assert array_trace.node_outputs == dict_trace.node_outputs
        assert array_trace.node_commit_round == dict_trace.node_commit_round
        assert array_trace.edge_outputs == dict_trace.edge_outputs == {}
        assert array_trace.edge_commit_round == dict_trace.edge_commit_round == {}

    def test_array_views_match(self):
        dict_trace, array_trace = _mis_trace_pair()
        assert list(dict_trace.node_commit_rounds()) == list(array_trace.node_commit_rounds())
        assert list(dict_trace.edge_commit_rounds()) == list(array_trace.edge_commit_rounds())

    def test_completion_times_match(self):
        dict_trace, array_trace = _mis_trace_pair()
        assert dict_trace.node_completion_times() == array_trace.node_completion_times()
        assert dict_trace.edge_completion_times() == array_trace.edge_completion_times()
        assert dict_trace.worst_case_rounds() == array_trace.worst_case_rounds()
        for v in range(6):
            assert dict_trace.node_completion_time(v) == array_trace.node_completion_time(v)
        for u, v in dict_trace.network.edges:
            assert dict_trace.edge_completion_time(u, v) == array_trace.edge_completion_time(u, v)

    def test_validation_and_selection_match(self):
        dict_trace, array_trace = _mis_trace_pair()
        assert bool(dict_trace.validate()) == bool(array_trace.validate())
        assert dict_trace.selected_nodes() == array_trace.selected_nodes()
        assert dict_trace.selected_edges() == array_trace.selected_edges()
        assert dict_trace.summary() == array_trace.summary()

    def test_measure_matches(self):
        dict_trace, array_trace = _mis_trace_pair()
        assert measure([dict_trace]) == measure([array_trace])


class TestUncommittedSlots:
    def test_missing_slots_charged_full_length(self):
        network = Network.from_edges(*gen.path_edges(3))
        trace = ExecutionTrace.from_arrays(
            network,
            problems.MIS,
            [True, None, None],
            array("q", [1, -1, -1]),
            [None] * network.m,
            array("q", [-1]) * network.m,
            rounds=7,
            completed=False,
        )
        assert trace.node_completion_times() == [1, 7, 7]
        assert trace.node_outputs == {0: True}
        assert trace.node_commit_round == {0: 1}
        result = trace.validate()
        assert not result and "missing node outputs" in result.reason

    def test_committed_none_is_not_missing(self):
        """A node that committed the value None must count as committed."""
        network = Network.from_edges(2, [(0, 1)])
        trace = ExecutionTrace.from_arrays(
            network,
            problems.coloring(None),
            [None, 0],
            array("q", [0, 0]),
            [None] * network.m,
            array("q", [-1]) * network.m,
            rounds=1,
        )
        assert trace.node_outputs == {0: None, 1: 0}
        # No "missing" failure: the validator itself decides (here the two
        # distinct labels are a proper colouring).
        assert trace.validate()


class TestRunnerProducesArrayTraces:
    def test_runner_trace_is_array_canonical(self):
        network = Network.from_edges(*gen.cycle_edges(12))
        trace = Runner().run(LubyMIS(), network, problems.MIS, seed=0)
        assert trace._node_values is not None
        assert trace._node_rounds is not None
        # Dict views derive lazily and agree with the arrays.
        rounds_arr = trace.node_commit_rounds()
        assert set(trace.node_outputs) == {v for v in range(12) if rounds_arr[v] >= 0}
        trace.require_valid()

    def test_hot_path_never_exports_networkx(self, monkeypatch):
        """run_trials(validate=True) must not call Network.to_networkx()."""
        network = Network.from_edges(*gen.random_regular_edges(4, 40, seed=1))

        def _boom(self):
            raise AssertionError("to_networkx() called on the hot path")

        monkeypatch.setattr(Network, "to_networkx", _boom)
        traces = run_trials(LubyMIS, network, problems.MIS, trials=3, seed=0, validate=True)
        assert len(traces) == 3
        measure(traces)

    def test_sweep_hot_path_never_exports_networkx(self, monkeypatch):
        from repro.analysis.sweep import sweep

        def _boom(self):
            raise AssertionError("to_networkx() called on the sweep hot path")

        monkeypatch.setattr(Network, "to_networkx", _boom)
        points = sweep(
            parameter="n",
            values=[12, 18],
            graph_factory=lambda n: gen.cycle_edges(n),
            algorithms={"luby": (lambda net: LubyMIS(), lambda net: problems.MIS)},
            trials=2,
            seed=0,
        )
        assert len(points) == 2
        assert all(p.measurement.n in (12, 18) for p in points)


class TestLegacyDictConstruction:
    def test_post_construction_assignment_still_works(self):
        """The vendored seed pipeline fills dicts after construction."""
        network = Network.from_edges(*gen.path_edges(4))
        trace = ExecutionTrace(network=network, problem=problems.MAXIMAL_MATCHING, rounds=2)
        trace.edge_outputs[(0, 1)] = True
        trace.edge_outputs[(1, 2)] = False
        trace.edge_outputs[(2, 3)] = True
        trace.edge_commit_round[(0, 1)] = 0
        trace.edge_commit_round[(1, 2)] = 1
        trace.edge_commit_round[(2, 3)] = 1
        assert trace.validate()
        assert list(trace.edge_commit_rounds()) == [0, 1, 1]
        assert trace.edge_completion_times() == [0, 1, 1]
        assert trace.selected_edges() == [(0, 1), (2, 3)]

    def test_setter_invalidates_caches(self):
        network = Network.from_edges(*gen.path_edges(3))
        trace = ExecutionTrace(network=network, problem=problems.MIS, rounds=4)
        trace.node_outputs = {0: True, 1: False, 2: True}
        trace.node_commit_round = {0: 0, 1: 2, 2: 4}
        assert trace.node_completion_times() == [0, 2, 4]
        trace.node_commit_round = {0: 1, 1: 1, 2: 1}
        assert trace.node_completion_times() == [1, 1, 1]

    def test_assignment_on_array_backed_trace(self):
        """Assigning one dict view of an array-canonical trace must not leave
        a half-array, half-dict state behind (the sibling view is preserved)."""
        _, trace = _mis_trace_pair()
        original_outputs = dict(trace.node_outputs)
        trace.node_commit_round = {v: 0 for v in range(6)}
        assert trace.node_outputs == original_outputs
        assert trace.node_completion_times() == [0] * 6
        assert trace.validate()
        edge_trace = ExecutionTrace.from_arrays(
            trace.network,
            problems.MAXIMAL_MATCHING,
            [None] * 6,
            array("q", [-1]) * 6,
            [True, False, True, False, True, False],
            array("q", [1] * 6),
            rounds=2,
        )
        original_edge_rounds = dict(edge_trace.edge_commit_round)
        edge_trace.edge_outputs = {e: False for e in trace.network.edges}
        assert edge_trace.edge_commit_round == original_edge_rounds
        assert not edge_trace.validate()
