"""Differential tests: numpy metric reductions vs the seed pure-Python path.

PR 3 rewrote ``repro.core.metrics`` (and the completion-time computation in
``repro.core.trace``) over numpy float64/int64 arrays.  The seed
implementation survives, vendored verbatim, in
``benchmarks/_legacy_metrics.py`` — per-entity completion times recomputed
from the dict views, pure-Python float accumulation, ``statistics.mean``.
These tests drive both implementations over randomized traces and pin
agreement to ≤ 1e-12 relative:

* hand-built **dict-first** traces with random commit rounds and random gaps
  (uncommitted entities, the −1 sentinel after array conversion),
* **runner-produced array traces** (``ExecutionTrace.from_arrays`` is the
  canonical storage on that path),
* node-labelled, edge-labelled and node+edge-labelled problems (the latter
  exercises the scatter/gather fusion of Definition 1's completion rule),
* edge cases: empty outputs, all-halted executions, empty graphs.

Completion-time *vectors* must agree exactly (they are integer-valued);
the scalar reductions to ≤ 1e-12 (numpy's pairwise-summed means may differ
from ``statistics.mean`` in the last ulp).
"""

from __future__ import annotations

import pathlib
import random
import sys
from array import array

import numpy as np
import pytest

BENCHMARKS = pathlib.Path(__file__).resolve().parents[2] / "benchmarks"
if str(BENCHMARKS) not in sys.path:
    sys.path.insert(0, str(BENCHMARKS))

import _legacy_metrics as legacy  # noqa: E402  (vendored seed implementation)

from repro.algorithms.matching.randomized import RandomizedMaximalMatching  # noqa: E402
from repro.algorithms.mis.luby import LubyMIS  # noqa: E402
from repro.core import metrics, problems  # noqa: E402
from repro.core.experiment import run_trials  # noqa: E402
from repro.core.trace import ExecutionTrace  # noqa: E402
from repro.graphs import generators as gen  # noqa: E402
from repro.local.network import Network  # noqa: E402
from repro.local.runner import Runner  # noqa: E402

RTOL = 1e-12

#: A problem that labels both nodes and edges (no built-in does), so the
#: completion rule's edge→node scatter and node→edge gather both fire.
BOTH_LABELS = problems.ProblemSpec(
    name="node-and-edge-labels",
    labels_nodes=True,
    labels_edges=True,
    validator=lambda graph, nodes, edges: problems.ValidationResult(True),
)


def _close(a: float, b: float) -> bool:
    return abs(a - b) <= RTOL * max(1.0, abs(a), abs(b))


def _random_network(rng: random.Random) -> Network:
    n = rng.randint(2, 40)
    p = rng.uniform(0.05, 0.4)
    edges = [(u, v) for u in range(n) for v in range(u + 1, n) if rng.random() < p]
    return Network.from_edges(n, edges)


def _random_dict_trace(network: Network, problem, rng: random.Random) -> ExecutionTrace:
    """A dict-first trace with random commit rounds and random gaps."""
    rounds = rng.randint(0, 12)
    trace = ExecutionTrace(
        network=network, problem=problem, rounds=rounds, algorithm_name="random"
    )
    if problem.labels_nodes:
        trace.node_outputs = {
            v: rng.randint(0, 1) for v in range(network.n) if rng.random() < 0.9
        }
        trace.node_commit_round = {
            v: rng.randint(0, rounds) for v in trace.node_outputs
        }
    if problem.labels_edges:
        trace.edge_outputs = {
            e: rng.randint(0, 1) for e in network.edges if rng.random() < 0.9
        }
        trace.edge_commit_round = {
            e: rng.randint(0, rounds) for e in trace.edge_outputs
        }
    trace.completed = False  # gaps are allowed; validation is not the point here
    return trace


def _assert_agreement(traces) -> None:
    """Every metric of the numpy path agrees with the vendored seed path."""
    for trace in traces:
        assert trace.node_completion_times() == legacy.legacy_node_completion_times(trace)
        assert trace.edge_completion_times() == legacy.legacy_edge_completion_times(trace)
    seed = legacy.legacy_measure(list(traces))
    new = metrics.measure(traces)
    assert (seed.algorithm, seed.problem, seed.n, seed.m, seed.trials) == (
        new.algorithm,
        new.problem,
        new.n,
        new.m,
        new.trials,
    )
    assert seed.worst_case == new.worst_case
    assert _close(seed.node_averaged, new.node_averaged)
    assert _close(seed.edge_averaged, new.edge_averaged)
    assert _close(seed.node_expected, new.node_expected)
    assert _close(seed.edge_expected, new.edge_expected)


class TestRandomizedDictTraces:
    @pytest.mark.parametrize("problem_key", ["nodes", "edges", "both"])
    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_traces_agree(self, problem_key, seed):
        problem = {
            "nodes": problems.MIS,
            "edges": problems.MAXIMAL_MATCHING,
            "both": BOTH_LABELS,
        }[problem_key]
        rng = random.Random(1000 * seed + {"nodes": 1, "edges": 2, "both": 3}[problem_key])
        network = _random_network(rng)
        trials = rng.randint(1, 4)
        _assert_agreement([_random_dict_trace(network, problem, rng) for _ in range(trials)])

    def test_quantiles_match_numpy_reference(self):
        rng = random.Random(7)
        network = _random_network(rng)
        traces = [_random_dict_trace(network, problems.MIS, rng) for _ in range(3)]
        qs = metrics.completion_time_quantiles(traces, quantiles=(0.0, 0.5, 1.0))
        expected = np.zeros(network.n)
        for t in traces:
            expected += np.asarray(t.node_completion_times())
        expected /= len(traces)
        assert qs[0.0] == pytest.approx(float(expected.min()))
        assert qs[0.5] == pytest.approx(float(np.median(expected)))
        assert qs[1.0] == pytest.approx(float(expected.max()))
        measured = metrics.measure(traces, quantiles=(0.5,))
        assert measured.node_quantiles == ((0.5, qs[0.5]),)
        # Quantile fields never participate in equality.
        assert measured == metrics.measure(traces)


class TestRunnerArrayTraces:
    def test_luby_traces_agree(self, network_factory):
        import networkx as nx

        network = network_factory(nx.gnp_random_graph(60, 0.1, seed=5), seed=2)
        traces = run_trials(
            LubyMIS, network, problems.MIS, trials=3, seed=4, runner=Runner(max_rounds=200)
        )
        _assert_agreement(traces)

    def test_matching_traces_agree(self, network_factory):
        import networkx as nx

        network = network_factory(nx.random_regular_graph(4, 40, seed=6), seed=3)
        traces = run_trials(
            RandomizedMaximalMatching,
            network,
            problems.MAXIMAL_MATCHING,
            trials=3,
            seed=5,
            runner=Runner(max_rounds=200),
        )
        _assert_agreement(traces)

    def test_direct_edge_list_workload_agrees(self):
        network = Network.from_edge_list(*gen.fast_gnp_edges(500, 8 / 499, seed=9))
        traces = run_trials(
            LubyMIS, network, problems.MIS, trials=2, seed=1, runner=Runner(max_rounds=200)
        )
        _assert_agreement(traces)


class TestEdgeCases:
    def test_empty_outputs_trace(self):
        """No entity ever committed: every completion time is the full length."""
        network = Network.from_edges(*gen.cycle_edges(5))
        trace = ExecutionTrace(
            network=network, problem=problems.MIS, rounds=9, completed=False
        )
        assert trace.node_completion_times() == [9] * 5
        _assert_agreement([trace])

    def test_all_halted_at_round_zero(self):
        """Everyone commits immediately: all-zero vectors, zero averages."""
        network = Network.from_edges(*gen.cycle_edges(6))
        trace = ExecutionTrace(network=network, problem=problems.MIS, rounds=0)
        trace.node_outputs = {v: v % 2 for v in range(6)}
        trace.node_commit_round = {v: 0 for v in range(6)}
        assert metrics.node_averaged_complexity(trace) == 0.0
        assert metrics.worst_case_complexity(trace) == 0
        _assert_agreement([trace])

    def test_minus_one_sentinel_array_trace(self):
        """Array-built trace with explicit −1 slots (never committed)."""
        network = Network.from_edges(*gen.path_edges(4))
        node_rounds = array("q", [0, -1, 2, -1])
        trace = ExecutionTrace.from_arrays(
            network,
            problems.MIS,
            [True, None, True, None],
            node_rounds,
            [None] * network.m,
            array("q", [-1]) * network.m,
            rounds=5,
            completed=False,
        )
        # Uncommitted nodes are charged the full execution length.
        assert trace.node_completion_times() == [0, 5, 2, 5]
        _assert_agreement([trace])

    def test_edgeless_network(self):
        network = Network.from_edges(3, [])
        trace = ExecutionTrace(network=network, problem=problems.MIS, rounds=2)
        trace.node_outputs = {0: 1, 1: 1, 2: 1}
        trace.node_commit_round = {0: 0, 1: 1, 2: 2}
        assert metrics.edge_averaged_complexity(trace) == 0.0
        assert metrics.edge_expected_complexity(trace) == 0.0
        assert metrics.completion_time_quantiles(trace, entity="edge") == {
            0.5: 0.0,
            0.9: 0.0,
            0.99: 0.0,
        }
        _assert_agreement([trace])

    def test_quantiles_reject_bad_input(self):
        network = Network.from_edges(*gen.cycle_edges(4))
        trace = ExecutionTrace(network=network, problem=problems.MIS, rounds=0)
        with pytest.raises(ValueError):
            metrics.completion_time_quantiles(trace, quantiles=(1.5,))
        with pytest.raises(ValueError):
            metrics.completion_time_quantiles(trace, entity="faces")


def test_measure_quantiles_validate_levels():
    """measure() and completion_time_quantiles share one validated helper."""
    network = Network.from_edges(*gen.cycle_edges(4))
    trace = ExecutionTrace(network=network, problem=problems.MIS, rounds=0)
    trace.node_outputs = {v: 1 for v in range(4)}
    trace.node_commit_round = {v: 0 for v in range(4)}
    with pytest.raises(ValueError):
        metrics.measure(trace, quantiles=(1.5,))
