# Entry points for the test, lint and benchmark harnesses (`make help`).

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: help test lint bench-smoke bench example serve-smoke

help:
	@echo "make test         tier-1 suite (the gate every PR must keep green)"
	@echo "make lint         repro.lint invariant checker (+ ruff when installed)"
	@echo "make bench-smoke  perf-harness self-check (tiny sizes, asserts invariants)"
	@echo "make bench        full perf suite -> BENCH_core.json (+ parallel sweep section)"
	@echo "make example      the 10^5-10^6-node scaling tour (skip the finale: EXAMPLE_FLAGS=--no-million)"
	@echo "make serve-smoke  experiment-service smoke: submit/schedule/SIGKILL-resume/HTTP round trip"

test:
	$(PYTHON) -m pytest -x -q $(PYTEST_FLAGS)

lint:
	$(PYTHON) -m repro.lint --baseline lint-baseline.json --strict-baseline
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check .; \
	else \
		echo "ruff not installed; skipped (CI pins ruff==0.8.4 — see docs/lint.md)"; \
	fi

bench-smoke:
	$(PYTHON) -m pytest -m bench_smoke -q

bench:
	$(PYTHON) benchmarks/core_perf.py
	$(PYTHON) benchmarks/sweep_scaling.py

example:
	$(PYTHON) examples/scaling_to_100k.py $(EXAMPLE_FLAGS)

serve-smoke:
	$(PYTHON) examples/service_quickstart.py
