# Entry points for the test and benchmark harnesses.
#
#   make test         tier-1 suite (the gate every PR must keep green)
#   make bench-smoke  perf-harness self-check (tiny sizes, asserts invariants)
#   make bench        full perf suite -> BENCH_core.json (+ parallel sweep section)
#   make example      the 10^5-10^6-node scaling tour (skip the finale: EXAMPLE_FLAGS=--no-million)
#   make serve-smoke  experiment-service smoke: submit/schedule/SIGKILL-resume/HTTP round trip

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench-smoke bench example serve-smoke

test:
	$(PYTHON) -m pytest -x -q $(PYTEST_FLAGS)

bench-smoke:
	$(PYTHON) -m pytest -m bench_smoke -q

bench:
	$(PYTHON) benchmarks/core_perf.py
	$(PYTHON) benchmarks/sweep_scaling.py

example:
	$(PYTHON) examples/scaling_to_100k.py $(EXAMPLE_FLAGS)

serve-smoke:
	$(PYTHON) examples/service_quickstart.py
