"""Wireless scheduling: MIS versus (2,2)-ruling set cluster heads.

The paper's motivating scenario for node-averaged complexity is energy: the
average number of rounds a node stays active approximates the energy the
network spends.  This example models a dense wireless deployment (a random
geometric-ish graph with growing density), where a set of non-conflicting
cluster heads must be elected:

* electing a *maximal independent set* gives the classical guarantee (every
  node has a head within one hop) but, per Theorem 16, its node-averaged cost
  grows with the density Δ;
* electing a *(2,2)-ruling set* relaxes coverage to two hops and, per
  Theorem 2, keeps the node-averaged cost constant — most radios can power
  down after a constant number of rounds regardless of density.

Run with::

    python examples/wireless_scheduling.py
"""

from __future__ import annotations

import networkx as nx

from repro.algorithms.mis import GhaffariMIS, LubyMIS
from repro.algorithms.ruling_set import RandomizedTwoTwoRulingSet
from repro.analysis import format_table, network_from
from repro.core import problems
from repro.core.experiment import run_trials
from repro.core.metrics import measure
from repro.local.runner import Runner


def deployment(density: int, n: int = 400) -> nx.Graph:
    """A bounded-degree deployment graph with average degree ≈ density."""
    return nx.random_regular_graph(density, n, seed=density)


def main() -> None:
    runner = Runner(max_rounds=50_000)
    rows = []
    for density in (4, 8, 16, 32):
        graph = deployment(density)
        network = network_from(graph, seed=density)
        for label, factory, problem in (
            ("MIS (Luby)", LubyMIS, problems.MIS),
            ("MIS (degree-adaptive)", GhaffariMIS, problems.MIS),
            ("(2,2)-ruling set", RandomizedTwoTwoRulingSet, problems.ruling_set(2, 2)),
        ):
            traces = run_trials(factory, network, problem, trials=3, seed=1, runner=runner)
            m = measure(traces)
            heads = len(traces[0].selected_nodes())
            rows.append(
                {
                    "density": density,
                    "cluster heads": label,
                    "heads elected": heads,
                    "node-averaged rounds": round(m.node_averaged, 2),
                    "worst-case rounds": m.worst_case,
                }
            )
    print(
        format_table(
            rows,
            columns=["density", "cluster heads", "heads elected", "node-averaged rounds", "worst-case rounds"],
            title="Cluster-head election cost as the deployment gets denser",
        )
    )
    print(
        "\nTakeaway: the (2,2)-ruling set column stays flat as the density grows"
        " (Theorem 2), while MIS pays more on average (Theorem 16)."
    )


if __name__ == "__main__":
    main()
