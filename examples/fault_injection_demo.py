"""Fault injection and crash-safe sweeps, end to end.

This example demonstrates the robustness layer:

1. run Luby's MIS under a crash/drop :class:`FaultSchedule` on *both*
   engines — the recorded fault events come from the engine-independent
   schedule, and each trace is validated on the **surviving subgraph**;
2. inject one-round message delays on *both* engines (the array engine
   carries late messages in per-edge one-round buffers) and show the
   clean outcomes plus the structured failure mode a cross-phase
   straggler can provoke from phase-typed coroutine algorithms;
3. run the **self-stabilising** Luby MIS through two crash waves on both
   engines: survivors detect crashed neighbours, revoke, and locally
   restart, and the trace's :class:`RecoveryTimeline` records the
   per-epoch time to restabilise;
4. run a checkpointed, failure-recording sweep, interrupt it half-way, and
   resume it cell-exactly — the resumed results are identical to an
   uninterrupted run.

Run with::

    python examples/fault_injection_demo.py
"""

from __future__ import annotations

import os
import tempfile

from repro.algorithms.mis import LubyMIS
from repro.algorithms.selfstab import SelfStabilizingLubyMIS, SelfStabilizingLubyMISArray
from repro.analysis import sweep
from repro.core import problems
from repro.core.metrics import measure
from repro.graphs import generators as gen
from repro.local.engine import ArrayEngine
from repro.local.faults import FaultSchedule
from repro.local.network import Network
from repro.local.runner import Runner


def crash_and_drop_on_both_engines() -> None:
    print("=== crashes + drops through both engines ===")
    network = Network.from_edge_list(
        *gen.erdos_renyi_edges(40, 4.0, seed=1), id_scheme="permuted"
    )
    faults = FaultSchedule(crashes={3: 2, 11: 1}, drop_rate=0.05, seed=7)
    runner_trace = Runner(strict=False, max_rounds=500).run(
        LubyMIS(), network, problems.MIS, seed=0, faults=faults
    )
    array_trace = ArrayEngine(strict=False, max_rounds=500).run(
        LubyMIS().as_array_algorithm(), network, problems.MIS, seed=0, faults=faults
    )
    for name, trace in (("coroutine", runner_trace), ("array", array_trace)):
        verdict = trace.validate()  # scores the surviving subgraph
        drops = sum(1 for e in trace.fault_events if e[0] == "drop")
        print(
            f"  {name:9s} rounds={trace.rounds:2d} crashed={trace.crashed} "
            f"drops={drops:3d} surviving-valid={verdict.valid}"
        )
    common = min(runner_trace.rounds, array_trace.rounds)
    prefix = lambda t: tuple(e for e in t.fault_events if e[1] <= common)  # noqa: E731
    assert prefix(runner_trace) == prefix(array_trace), "schedules must agree"
    print(f"  fault events identical over the common {common} rounds")


def delays_on_both_engines() -> None:
    print("\n=== one-round message delays through both engines ===")
    network = Network.from_edge_list(*gen.cycle_edges(16), id_scheme="permuted")
    faults = FaultSchedule(delay_rate=0.05, seed=1)
    # A mild delay schedule usually just slows Luby down.  The same schedule
    # object drives both engines: the coroutine runner re-queues each delayed
    # message, the array engine carries it in per-directed-edge late masks.
    runner_trace = Runner(strict=False, max_rounds=500).run(
        LubyMIS(), network, problems.MIS, seed=1, faults=faults
    )
    array_trace = ArrayEngine(strict=False, max_rounds=500).run(
        LubyMIS().as_array_algorithm(), network, problems.MIS, seed=1, faults=faults
    )
    for name, trace in (("coroutine", runner_trace), ("array", array_trace)):
        delays = sum(1 for e in trace.fault_events if e[0] == "delay")
        print(
            f"  {name:9s} delayed {delays:2d} messages: rounds={trace.rounds}, "
            f"valid={trace.validate().valid}"
        )
    common = min(runner_trace.rounds, array_trace.rounds)
    prefix = lambda t: tuple(e for e in t.fault_events if e[1] <= common)  # noqa: E731
    assert prefix(runner_trace) == prefix(array_trace), "schedules must agree"
    # A cross-phase straggler can also surface as the algorithm's own
    # exception — a structured outcome the sweep layer records as a row.
    result = sweep(
        parameter="n",
        values=[12],
        graph_factory=gen.cycle_edges,
        algorithms={"luby": (lambda net: LubyMIS(), lambda net: problems.MIS)},
        trials=4,
        seed=4,
        validate=False,
        faults=FaultSchedule(drop_rate=0.1, delay_rate=0.3, seed=9),
        on_error="record",
    )
    print(
        f"  delay-heavy sweep: {sum(1 for _ in result)} point(s), "
        f"{len(result.failures)} recorded failure(s)"
    )
    for failure in result.failures:
        print(f"    trial {failure.trial}: kind={failure.kind}")


def self_stabilizing_recovery() -> None:
    print("\n=== self-stabilising Luby MIS: crash waves, then recovery ===")
    network = Network.from_edge_list(*gen.erdos_renyi_edges(40, 3.0, seed=3))
    # Two crash waves: three vertices die at round 2, three more at round 6.
    crashes = {5: 2, 17: 2, 29: 2, 8: 6, 23: 6, 36: 6}
    faults = FaultSchedule(crashes=crashes, seed=5)
    runner_trace = Runner(max_rounds=500).run(
        SelfStabilizingLubyMIS(), network, problems.MIS, seed=1, faults=faults
    )
    array_trace = ArrayEngine(max_rounds=500).run(
        SelfStabilizingLubyMISArray(), network, problems.MIS, seed=1, faults=faults
    )
    for name, trace in (("coroutine", runner_trace), ("array", array_trace)):
        timeline = trace.recovery
        strict = problems.MIS.validate_induced(
            network,
            trace._node_value_slots(),
            trace._edge_value_slots(),
            trace.crashed,
        )
        print(
            f"  {name:9s} rounds={trace.rounds:2d} crashed={sorted(trace.crashed)} "
            f"survivor-valid={bool(strict)}"
        )
        for crash_round, ttr in zip(timeline.crash_rounds, timeline.time_to_restabilize()):
            print(f"    crash wave at round {crash_round}: restabilised after {ttr} round(s)")
        assert bool(strict), "survivors must re-form a valid MIS"
        assert all(t is not None for t in timeline.time_to_restabilize())
    # The same timeline aggregates through the measurement layer.
    measurement = measure([runner_trace]).as_dict()
    print(
        f"  measured: recovery_epochs={measurement['recovery_epochs']} "
        f"mean_time_to_restabilize={measurement['mean_time_to_restabilize']} "
        f"unrecovered_epochs={measurement['unrecovered_epochs']}"
    )


def checkpointed_sweep_resumes_exactly() -> None:
    print("\n=== crash-safe sweep: interrupt, then resume cell-exactly ===")
    settings = dict(
        parameter="n",
        values=[20, 30, 40],
        graph_factory=gen.cycle_edges,
        algorithms={"luby": (lambda net: LubyMIS(), lambda net: problems.MIS)},
        trials=3,
        seed=0,
        faults=FaultSchedule(crashes={0: 2}),
    )
    baseline = sweep(**settings)

    path = os.path.join(tempfile.mkdtemp(prefix="fault-demo-"), "sweep.jsonl")
    import repro.analysis.sweep as _  # noqa: F401  (module, for the hook)
    import sys

    sweep_module = sys.modules["repro.analysis.sweep"]
    rows_before_interrupt = 4

    def interrupt(row):
        nonlocal rows_before_interrupt
        rows_before_interrupt -= 1
        if rows_before_interrupt == 0:
            raise KeyboardInterrupt

    sweep_module._test_hook = interrupt
    try:
        sweep(checkpoint=path, **settings)
        raise AssertionError("the interrupt hook should have fired")
    except KeyboardInterrupt:
        print("  interrupted after 4 cells; checkpoint flushed")
    finally:
        sweep_module._test_hook = None

    resumed = sweep(checkpoint=path, **settings)
    assert resumed == baseline, "resume must reproduce the uninterrupted sweep"
    print(f"  resumed from {path}")
    print("  resumed results identical to an uninterrupted sweep:")
    for point in resumed:
        row = point.measurement.as_dict()
        print(
            f"    n={point.value:3d} node_avg={row['node_averaged']:.2f} "
            f"worst={row['worst_case']}"
        )


def main() -> None:
    crash_and_drop_on_both_engines()
    delays_on_both_engines()
    self_stabilizing_recovery()
    checkpointed_sweep_resumes_exactly()


if __name__ == "__main__":
    main()
