"""Content replication: edge-averaged vs node-averaged cost of maximal matching.

A peer-to-peer network pairs up adjacent servers to replicate content
(a maximal matching).  Theorem 4 says the *edges* of the network settle their
fate after O(1) rounds on average (a link either becomes a replication pair
early or learns early that one endpoint is taken), while nodes — which must
wait for *all* their incident links — take longer on average, and the global
worst case grows with n.  This example measures all three quantities for the
randomized and the deterministic matching algorithms as the network grows.

Run with::

    python examples/matching_edge_vs_node.py
"""

from __future__ import annotations

import networkx as nx

from repro.algorithms.matching import DeterministicMaximalMatching, RandomizedMaximalMatching
from repro.analysis import format_table, network_from
from repro.core import problems
from repro.core.experiment import run_trials
from repro.core.metrics import measure
from repro.local.runner import Runner


def main() -> None:
    runner = Runner(max_rounds=50_000)
    rows = []
    for n in (100, 300, 900):
        graph = nx.random_regular_graph(4, n, seed=7)
        network = network_from(graph, seed=n)
        for label, factory in (
            ("randomized (Thm 4)", RandomizedMaximalMatching),
            ("deterministic (Thm 5)", DeterministicMaximalMatching),
        ):
            traces = run_trials(
                factory, network, problems.MAXIMAL_MATCHING, trials=3, seed=5, runner=runner
            )
            m = measure(traces)
            rows.append(
                {
                    "n": n,
                    "algorithm": label,
                    "edge-averaged": round(m.edge_averaged, 2),
                    "node-averaged": round(m.node_averaged, 2),
                    "worst-case": m.worst_case,
                    "pairs": len(traces[0].selected_edges()),
                }
            )
    print(
        format_table(
            rows,
            columns=["n", "algorithm", "edge-averaged", "node-averaged", "worst-case", "pairs"],
            title="Replication pairing: who decides when?",
        )
    )
    print(
        "\nTakeaway: links settle in O(1) rounds on average (edge-averaged column"
        " flat, Theorem 4); nodes and the global finish time take longer."
    )


if __name__ == "__main__":
    main()
