"""The experiment service, end to end — and the `make serve-smoke` check.

This example walks every layer of ``repro.service``:

1. **submit** two sweep specs (same graph family — they will share CSR
   builds through the content-addressed graph cache) to a fresh sqlite
   service database;
2. **schedule** them onto worker processes and read bit-exact measurements,
   full provenance (seed schedule, graph recipes, batch-chunk choice, sweep
   checkpoint header) and graph-cache statistics back from the store;
3. **kill** a worker mid-sweep (the deterministic ``SIGKILL``-after-k-rows
   seam) and watch the queue retry it with backoff until the checkpointed
   sweep resumes cell-exactly — the recovered results are identical to an
   uninterrupted run;
4. **serve** the HTTP JSON API and drive the same verbs over a socket.

Every step asserts its invariant, so the script doubles as the smoke test
behind ``make serve-smoke``.  Run with::

    python examples/service_quickstart.py
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import urllib.request

from repro.analysis import sweep
from repro.service import JobQueue, ResultStore, Scheduler, SweepSpec
from repro.service.api import ServiceAPI
from repro.service.scheduler import KILL_ENV


def make_spec(**overrides):
    settings = dict(
        parameter="n",
        values=(16, 24),
        family="cycle",
        algorithms=("luby_mis", "randomized_matching"),
        trials=2,
        seed=11,
    )
    settings.update(overrides)
    return SweepSpec(**settings)


def live_points(spec):
    """The in-process reference run (full float64 precision)."""
    return [
        (
            point.value,
            point.measurement.algorithm,
            {
                key: list(value) if isinstance(value, tuple) else value
                for key, value in point.measurement.__dict__.items()
            },
        )
        for point in sweep(**spec.sweep_kwargs())
    ]


def stored_points(store, job_id):
    return [
        (row["value"], row["algorithm"], row["measurement"])
        for row in store.points(job_id)
    ]


def submit_schedule_query(db_path: str) -> None:
    print("=== submit two jobs, drain, read results + provenance ===")
    spec_a = make_spec(name="first submitter")
    spec_b = make_spec(name="second submitter")  # same graphs, same cache keys
    scheduler = Scheduler(db_path, max_workers=2, poll_s=0.05)
    try:
        id_a = scheduler.queue.submit(spec_a)
        id_b = scheduler.queue.submit(spec_b)
        scheduler.drain()
        for job_id in (id_a, id_b):
            job = scheduler.queue.job(job_id)
            assert job.status == "done", job
            assert stored_points(scheduler.store, job_id) == live_points(spec_a)
        provenance = scheduler.store.experiment(id_a)["provenance"]
        schedule = provenance["seed_schedule"]["per_index"]
        stats = scheduler.store.graph_cache_stats()
        assert all(row["builds"] == 1 for row in stats)  # one CSR build/key
        print(f"  jobs {id_a} and {id_b}: done, stored points == in-process sweep")
        print(f"  seed schedule index 0: {schedule['0']}")
        print(
            "  graph cache: "
            + ", ".join(
                f"n={row['n']} builds={row['builds']} hits={row['hits']}"
                for row in stats
            )
        )
    finally:
        scheduler.close()


def sigkill_resume(db_path: str) -> None:
    print("=== SIGKILL a worker mid-sweep; the retry resumes cell-exactly ===")
    spec = make_spec(name="durability proof", seed=23)
    os.environ[KILL_ENV] = "3"  # every worker dies 3 journal rows in
    try:
        scheduler = Scheduler(
            db_path, poll_s=0.05, backoff_base_s=0.05, backoff_cap_s=0.2
        )
        try:
            job_id = scheduler.queue.submit(spec, max_attempts=5)
            scheduler.drain()
            job = scheduler.queue.job(job_id)
            assert job.status == "done", job
            assert job.attempts > 1  # it really did die and come back
            assert stored_points(scheduler.store, job_id) == live_points(spec)
            print(
                f"  job {job_id}: done after {job.attempts} attempts "
                "(workers SIGKILLed mid-sweep), results identical to an "
                "uninterrupted run"
            )
        finally:
            scheduler.close()
    finally:
        del os.environ[KILL_ENV]


def http_round_trip(db_path: str) -> None:
    print("=== the same verbs over the HTTP JSON API ===")
    api = ServiceAPI(db_path)
    thread = threading.Thread(target=api.serve_forever, daemon=True)
    thread.start()
    try:
        health = json.load(urllib.request.urlopen(api.url + "/v1/healthz"))
        assert health["status"] == "ok"
        spec = make_spec(name="via http", values=(10,), algorithms=("luby_mis",))
        request = urllib.request.Request(
            api.url + "/v1/jobs",
            data=json.dumps(spec.to_dict()).encode(),
            headers={"Content-Type": "application/json"},
        )
        created = json.load(urllib.request.urlopen(request))
        scheduler = Scheduler(db_path, poll_s=0.05)
        try:
            scheduler.drain()
        finally:
            scheduler.close()
        results = json.load(
            urllib.request.urlopen(api.url + f"/v1/jobs/{created['id']}/results")
        )
        assert results["status"] == "done"
        assert len(results["points"]) == 1
        print(
            f"  POST /v1/jobs -> job {created['id']}; "
            f"GET results -> {len(results['points'])} point(s), "
            f"schema {health['schema']}"
        )
    finally:
        api.shutdown()


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        db_path = os.path.join(tmp, "service.db")
        submit_schedule_query(db_path)
        sigkill_resume(os.path.join(tmp, "durability.db"))
        http_round_trip(os.path.join(tmp, "http.db"))
    print("service quickstart: all invariants held")


if __name__ == "__main__":
    main()
