"""Scaling to 10⁵ nodes: direct edge lists, CSR validation, array traces.

This example stands up workloads far beyond what the networkx-based pipeline
could handle interactively and walks the full trial pipeline — generate →
network → run → validate → measure — without ever materialising a
``networkx.Graph``:

* workload generation uses the **direct edge-list generators**
  (``cycle_edges``, ``random_regular_edges``), which emit ``(n, edges)``
  pairs while replaying the exact RNG streams of their networkx twins;
* ``Network.from_edge_list`` builds the CSR-backed network straight from the
  edge list;
* ``trace.require_valid()`` checks the solution through the CSR-native
  validators (``ProblemSpec.validate_network``) on the trace's flat array
  storage.

Run with::

    PYTHONPATH=src python examples/scaling_to_100k.py
"""

from __future__ import annotations

import time

from repro.algorithms.mis.luby import LubyMIS
from repro.core import problems
from repro.core.metrics import measure
from repro.graphs import generators as gen
from repro.local.network import Network
from repro.local.runner import Runner


def run_workload(name: str, n: int, edges, trials: int = 2) -> None:
    print(f"\n=== {name}: n={n:,}, m={len(edges):,} ===")

    t0 = time.perf_counter()
    network = Network.from_edge_list(n, edges, id_scheme="sequential")
    print(f"  network build   {time.perf_counter() - t0:7.2f} s  (CSR, no networkx)")

    runner = Runner(max_rounds=20_000)
    traces = []
    t0 = time.perf_counter()
    for trial in range(trials):
        traces.append(runner.run(LubyMIS(), network, problems.MIS, seed=trial))
    print(f"  {trials} Luby trials   {time.perf_counter() - t0:7.2f} s")

    t0 = time.perf_counter()
    for trace in traces:
        trace.require_valid()
    print(f"  CSR validation  {time.perf_counter() - t0:7.2f} s  (per-slot arrays)")

    t0 = time.perf_counter()
    measurement = measure(traces)
    print(f"  measurement     {time.perf_counter() - t0:7.2f} s")
    print(
        f"  rounds={[t.rounds for t in traces]}  "
        f"AVG_V={measurement.node_averaged:.2f}  "
        f"WORST={measurement.worst_case}  "
        f"|MIS|={len(traces[0].selected_nodes()):,}"
    )


def main() -> None:
    t0 = time.perf_counter()
    n, edges = gen.cycle_edges(100_000)
    print(f"generated C_100000 edge list in {time.perf_counter() - t0:.2f} s")
    run_workload("cycle", n, edges)

    t0 = time.perf_counter()
    n, edges = gen.random_regular_edges(4, 50_000, seed=1)
    print(f"\ngenerated random 4-regular (n=50k) edge list in {time.perf_counter() - t0:.2f} s")
    run_workload("random-4-regular", n, edges)


if __name__ == "__main__":
    main()
