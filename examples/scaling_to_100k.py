"""Scaling to 10⁵–10⁶ nodes: direct edge lists, CSR validation, numpy metrics.

This example stands up workloads far beyond what the networkx-based pipeline
could handle interactively and walks the full trial pipeline — generate →
network → run → validate → measure — without ever materialising a
``networkx.Graph``:

* workload generation uses the **direct edge-list generators**
  (``cycle_edges``, ``random_regular_edges``), which emit ``(n, edges)``
  pairs while replaying the exact RNG streams of their networkx twins, and —
  for the million-node finale — the **geometric-skip** ``fast_gnp_edges``
  generator, which samples ``G(n, p)`` in ``O(n + m)`` with its own
  documented seed schedule (the quadratic Gilbert twin would need hours at
  n = 10⁶);
* ``Network.from_edge_list`` builds the CSR-backed network straight from the
  edge list;
* ``trace.require_valid()`` checks the solution through the CSR-native
  validators (``ProblemSpec.validate_network``) on the trace's flat array
  storage;
* ``measure()`` reduces the completion-time vectors over numpy float64
  arrays (with tail quantiles), so the measurement phase stays in
  milliseconds even at n = 10⁶.

Run with::

    PYTHONPATH=src python examples/scaling_to_100k.py            # full tour incl. n = 10⁶
    PYTHONPATH=src python examples/scaling_to_100k.py --no-million
"""

from __future__ import annotations

import argparse
import time

from repro.algorithms.mis.luby import LubyMIS
from repro.core import problems
from repro.core.metrics import DEFAULT_QUANTILES, measure
from repro.graphs import generators as gen
from repro.local.network import Network
from repro.local.runner import Runner


def run_workload(name: str, n: int, edges, trials: int = 2) -> None:
    print(f"\n=== {name}: n={n:,}, m={len(edges):,} ===")

    t0 = time.perf_counter()
    network = Network.from_edge_list(n, edges, id_scheme="sequential")
    print(f"  network build   {time.perf_counter() - t0:7.2f} s  (CSR, no networkx)")

    runner = Runner(max_rounds=20_000)
    traces = []
    t0 = time.perf_counter()
    for trial in range(trials):
        traces.append(runner.run(LubyMIS(), network, problems.MIS, seed=trial))
    print(f"  {trials} Luby trials   {time.perf_counter() - t0:7.2f} s")

    t0 = time.perf_counter()
    for trace in traces:
        trace.require_valid()
    print(f"  CSR validation  {time.perf_counter() - t0:7.2f} s  (per-slot arrays)")

    t0 = time.perf_counter()
    measurement = measure(traces, quantiles=DEFAULT_QUANTILES)
    print(f"  numpy measure   {time.perf_counter() - t0:7.2f} s")
    quantiles = "  ".join(f"q{level:g}={value:.1f}" for level, value in measurement.node_quantiles)
    print(
        f"  rounds={[t.rounds for t in traces]}  "
        f"AVG_V={measurement.node_averaged:.2f}  "
        f"WORST={measurement.worst_case}  "
        f"|MIS|={len(traces[0].selected_nodes()):,}"
    )
    print(f"  node completion quantiles: {quantiles}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--no-million",
        action="store_true",
        help="skip the n = 10⁶ G(n, 10/n) finale (runs the 10⁵ workloads only)",
    )
    args = parser.parse_args()

    t0 = time.perf_counter()
    n, edges = gen.cycle_edges(100_000)
    print(f"generated C_100000 edge list in {time.perf_counter() - t0:.2f} s")
    run_workload("cycle", n, edges)

    t0 = time.perf_counter()
    n, edges = gen.random_regular_edges(4, 50_000, seed=1)
    print(f"\ngenerated random 4-regular (n=50k) edge list in {time.perf_counter() - t0:.2f} s")
    run_workload("random-4-regular", n, edges)

    if args.no_million:
        return

    # The million-node finale: G(n, 10/n) through the geometric-skip
    # generator.  One trial — the point is that generate → network → run →
    # validate → measure completes interactively at n = 10⁶, with the
    # measurement phase (numpy reductions over the trace's flat arrays)
    # a rounding error next to the simulation itself.
    big_n = 1_000_000
    t0 = time.perf_counter()
    n, edges = gen.fast_gnp_edges(big_n, 10.0 / big_n, seed=1)
    print(
        f"\ngenerated G(n=10⁶, p=10/n) edge list in {time.perf_counter() - t0:.2f} s "
        f"(geometric skip; the Gilbert loop would flip {big_n * (big_n - 1) // 2:,} coins)"
    )
    run_workload("gnp-million", n, edges, trials=1)


if __name__ == "__main__":
    main()
