"""Scaling to 10⁵–10⁶ nodes: array-first edge lists, one Experiment facade call.

This example stands up workloads far beyond what the networkx-based pipeline
could handle interactively and walks the full trial pipeline — generate →
network → run → validate → measure — through the single documented entry
point, :class:`repro.core.experiment.Experiment`, without ever materialising
a ``networkx.Graph`` **or a Python tuple per edge**:

* workload generation uses the direct generators' ``as_arrays=True`` mode,
  which emits :class:`repro.graphs.edgelist.EdgeArrays` — flat int64
  endpoint arrays with provenance metadata.  The million-node finale uses
  the **geometric-skip** ``fast_gnp_edges`` generator, which samples
  ``G(n, p)`` in ``O(n + m)`` and hands its numpy arrays straight through
  (the quadratic Gilbert twin would need hours at n = 10⁶, and the old
  tuple round-trip would rebuild a million tuples just to throw them away);
* the facade builds the network through the vectorised numpy CSR path
  (``Network.from_endpoint_arrays`` — the ``kind="build"`` cells of
  ``BENCH_core.json`` record the speedup over the tuple-row build), runs
  the seeded trials, validates through the CSR-native validators, and
  measures over numpy float64 reductions with tail quantiles;
* the trials themselves run with ``engine="auto"``: Luby MIS implements the
  :class:`repro.local.engine.ArrayAlgorithm` protocol, so the round loop
  executes as vectorised numpy operations over the CSR topology
  (:class:`repro.local.engine.ArrayEngine`) instead of per-node coroutines —
  the ``kind="run"`` cells of ``BENCH_core.json`` record the speedup
  (pass ``--engine node`` to feel the difference: the n = 10⁶ finale's
  runner phase drops from ≈ 60 s to well under a second);
* per-phase wall-clock timings come back on the result
  (``run.timings``), so the breakdown below is the facade's own record.

Run with::

    PYTHONPATH=src python examples/scaling_to_100k.py            # full tour incl. n = 10⁶
    PYTHONPATH=src python examples/scaling_to_100k.py --no-million
    PYTHONPATH=src python examples/scaling_to_100k.py --engine node   # coroutine runner
"""

from __future__ import annotations

import argparse
import time

from repro.algorithms.mis.luby import LubyMIS
from repro.core import problems
from repro.core.experiment import Experiment
from repro.graphs import generators as gen


def run_workload(name: str, arrays, trials: int = 2, engine: str = "auto") -> None:
    print(f"\n=== {name}: n={arrays.n:,}, m={arrays.m:,} (engine={engine}) ===")

    result = Experiment(
        problem=problems.MIS,
        algorithm=LubyMIS,
        graphs={name: arrays},
        seeds=range(trials),
        id_scheme="sequential",
        max_rounds=20_000,
        engine=engine,
    ).run()

    run = result.run
    timings = run.timings
    print(f"  network build   {timings['network_s']:7.2f} s  (numpy CSR, no tuples)")
    print(f"  {trials} Luby trials   {timings['runner_s']:7.2f} s")
    print(f"  CSR validation  {timings['validate_s']:7.2f} s  (verdicts: {list(run.verdicts)})")
    print(f"  numpy measure   {timings['measure_s']:7.2f} s")
    measurement = run.measurement
    quantiles = "  ".join(f"q{level:g}={value:.1f}" for level, value in measurement.node_quantiles)
    print(
        f"  rounds={[t.rounds for t in run.traces]}  "
        f"AVG_V={measurement.node_averaged:.2f}  "
        f"WORST={measurement.worst_case}  "
        f"|MIS|={len(run.traces[0].selected_nodes()):,}"
    )
    print(f"  node completion quantiles: {quantiles}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--no-million",
        action="store_true",
        help="skip the n = 10⁶ G(n, 10/n) finale (runs the 10⁵ workloads only)",
    )
    parser.add_argument(
        "--engine",
        choices=("node", "array", "auto"),
        default="auto",
        help="execution engine: auto (default) runs the vectorised array "
        "engine, node the per-node coroutine runner",
    )
    args = parser.parse_args()

    t0 = time.perf_counter()
    arrays = gen.cycle_edges(100_000, as_arrays=True)
    print(f"generated C_100000 endpoint arrays in {time.perf_counter() - t0:.2f} s")
    run_workload("cycle", arrays, engine=args.engine)

    t0 = time.perf_counter()
    arrays = gen.random_regular_edges(4, 50_000, seed=1, as_arrays=True)
    print(f"\ngenerated random 4-regular (n=50k) arrays in {time.perf_counter() - t0:.2f} s")
    run_workload("random-4-regular", arrays, engine=args.engine)

    if args.no_million:
        return

    # The million-node finale: G(n, 10/n) through the geometric-skip
    # generator, endpoint arrays end to end.  With engine="auto" the round
    # loop itself runs vectorised over the CSR arrays, so the whole
    # generate → network → run → validate → measure pipeline at n = 10⁶ is
    # a matter of seconds — no phase is per-node Python any more.
    big_n = 1_000_000
    t0 = time.perf_counter()
    arrays = gen.fast_gnp_edges(big_n, 10.0 / big_n, seed=1, as_arrays=True)
    print(
        f"\ngenerated G(n=10⁶, p=10/n) endpoint arrays in {time.perf_counter() - t0:.2f} s "
        f"(geometric skip; the Gilbert loop would flip {big_n * (big_n - 1) // 2:,} coins)"
    )
    run_workload("gnp-million", arrays, trials=1, engine=args.engine)


if __name__ == "__main__":
    main()
