"""Explore the lower-bound construction of Section 4.

This example walks through the machinery behind Theorem 16:

1. build the cluster tree skeleton ``CT_k`` and print its structure (Figure 1);
2. realise it as a base graph ``G_k`` and check the Lemma 13 properties;
3. take a random lift (Lemma 12) and measure how locally tree-like it is;
4. run Algorithm 1 on a pair of ``S(c0)`` / ``S(c1)`` nodes and confirm that
   their views are indistinguishable (Theorem 11);
5. run an MIS algorithm on the graph and show that the big independent
   cluster ``S(c0)`` is exactly where the node-averaged cost concentrates.

Run with::

    python examples/lower_bound_explorer.py
"""

from __future__ import annotations

from statistics import mean

from repro.algorithms.mis import LubyMIS
from repro.analysis import format_table, network_from
from repro.core import problems
from repro.core.experiment import run_trials
from repro.core.metrics import measure
from repro.local.runner import Runner
from repro.lowerbound import (
    ClusterTreeSkeleton,
    build_base_graph,
    cluster_reports,
    find_isomorphism,
    lift_cluster_graph,
    verify_view_isomorphism,
)


def main() -> None:
    k, beta = 1, 4

    # 1. The skeleton (Figure 1).
    skeleton = ClusterTreeSkeleton(k)
    skeleton.validate()
    print(f"CT_{k}: {skeleton.summary()}")

    # 2. The base graph and its clusters (Lemma 13).
    gk = build_base_graph(k, beta)
    gk.validate_degrees()
    print(f"\nG_{k} with beta={beta}: n={gk.n}, max degree bound {gk.max_degree_bound()}")
    print(format_table([r.as_dict() for r in cluster_reports(gk)], title="cluster structure"))

    # 3. A random lift (Lemma 12).
    lifted = lift_cluster_graph(gk, order=3, seed=1)
    lifted.validate_degrees()
    print(f"\nlift of order 3: n={lifted.n} (degrees preserved, clusters preserved)")

    # 4. Theorem 11: indistinguishable views.
    v0 = lifted.special_cluster(0)[0]
    v1 = lifted.special_cluster(1)[0]
    phi = find_isomorphism(lifted, v0, v1)
    print(
        f"Algorithm 1 maps the radius-{k} view of node {v0} (in S(c0)) onto node {v1} "
        f"(in S(c1)): {len(phi)} nodes paired, verified={verify_view_isomorphism(lifted, phi, v0, v1)}"
    )

    # 5. Where does an MIS algorithm spend its node-averaged budget?
    network = network_from(lifted.graph, seed=3)
    traces = run_trials(LubyMIS, network, problems.MIS, trials=3, seed=0, runner=Runner())
    m = measure(traces)
    s0 = lifted.special_cluster(0)
    others = [v for v in network.vertices if v not in set(s0)]
    s0_cost = mean(mean(t.node_completion_time(v) for v in s0) for t in traces)
    other_cost = mean(mean(t.node_completion_time(v) for v in others) for t in traces)
    print(
        f"\nLuby MIS on the lifted G_{k}: node-averaged={m.node_averaged:.2f}, "
        f"S(c0) average={s0_cost:.2f}, rest of the graph={other_cost:.2f}"
    )
    print(
        "The large independent cluster S(c0) decides last — the population the "
        "lower bound of Theorem 16 is built around."
    )


if __name__ == "__main__":
    main()
