"""Quickstart: run a distributed algorithm and measure its averaged complexities.

This example builds a small random network, runs Luby's randomized MIS on it
in the simulated LOCAL model, validates the output, and prints every averaged
complexity notion the paper defines (Definition 1 and Appendix A).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import random

import networkx as nx

from repro import Network, Runner, measure, problems
from repro.algorithms.mis import LubyMIS
from repro.core.experiment import run_trials
from repro.core.metrics import complexity_hierarchy


def main() -> None:
    # 1. Build a workload graph and wrap it into a network with unique IDs.
    graph = nx.random_regular_graph(6, 200, seed=1)
    network = Network.from_graph(graph, id_scheme="permuted", rng=random.Random(0))

    # 2. Run a single execution and inspect the trace.
    runner = Runner()
    trace = runner.run(LubyMIS(), network, problems.MIS, seed=42)
    trace.require_valid()
    print("single execution:")
    for key, value in trace.summary().items():
        print(f"  {key}: {value}")

    # 3. Averaged complexities are expectations: run several trials.
    traces = run_trials(LubyMIS, network, problems.MIS, trials=10, seed=0, runner=runner)
    measurement = measure(traces)
    print("\naveraged complexities over 10 trials:")
    for key, value in measurement.as_dict().items():
        print(f"  {key}: {value}")

    # 4. The Appendix A chain AVG_V <= AVG^w_V <= EXP_V <= WORST_V.
    chain = complexity_hierarchy(traces)
    print("\ncomplexity hierarchy (Appendix A):")
    print(
        "  AVG_V = {avg:.2f}  <=  AVG^w_V = {weighted_avg:.2f}  <=  "
        "EXP_V = {expected:.2f}  <=  WORST_V = {worst:.0f}".format(**chain)
    )


if __name__ == "__main__":
    main()
