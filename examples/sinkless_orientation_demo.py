"""Write off-loading: sinkless orientations of a storage network.

Every server in a storage cluster must forward its write log to at least one
neighbour (no server may be a sink).  This is the sinkless-orientation problem
on a graph of minimum degree 3.  The example runs the randomized algorithm
(node-averaged O(1), Section 3.3) and the deterministic two-stage algorithm
(Theorem 6, simplified as documented in DESIGN.md) and reports how quickly
servers learn their forwarding direction.

Run with::

    python examples/sinkless_orientation_demo.py
"""

from __future__ import annotations

from collections import Counter

import networkx as nx

from repro.algorithms.orientation import (
    DeterministicSinklessOrientation,
    RandomizedSinklessOrientation,
)
from repro.analysis import format_table, network_from
from repro.core import problems
from repro.core.experiment import run_trials
from repro.core.metrics import measure
from repro.local.runner import Runner


def main() -> None:
    runner = Runner(max_rounds=50_000)
    rows = []
    for n in (90, 270, 810):
        graph = nx.random_regular_graph(3, n, seed=11)
        network = network_from(graph, seed=n)
        for label, factory in (
            ("randomized", RandomizedSinklessOrientation),
            ("deterministic (Thm 6)", DeterministicSinklessOrientation),
        ):
            traces = run_trials(
                factory, network, problems.SINKLESS_ORIENTATION, trials=3, seed=2, runner=runner
            )
            m = measure(traces)
            rows.append(
                {
                    "servers": n,
                    "algorithm": label,
                    "node-averaged": round(m.node_averaged, 2),
                    "edge-averaged": round(m.edge_averaged, 2),
                    "worst-case": m.worst_case,
                }
            )
    print(
        format_table(
            rows,
            columns=["servers", "algorithm", "node-averaged", "edge-averaged", "worst-case"],
            title="Sinkless orientation: when does each server know where to forward?",
        )
    )

    # Show the distribution of decision times for one deterministic run: most
    # servers decide in the first few rounds, a few stragglers pay the worst case.
    graph = nx.random_regular_graph(3, 270, seed=11)
    network = network_from(graph, seed=270)
    trace = Runner(max_rounds=50_000).run(
        DeterministicSinklessOrientation(), network, problems.SINKLESS_ORIENTATION, seed=2
    )
    histogram = Counter(trace.node_completion_times())
    print("\ncompletion-time histogram (deterministic, n=270):")
    for rounds in sorted(histogram):
        print(f"  round {rounds:3d}: {'#' * min(60, histogram[rounds])} ({histogram[rounds]})")


if __name__ == "__main__":
    main()
