"""E1 — Theorem 2 vs Theorem 16: (2,2)-ruling set stays O(1), MIS grows with Δ.

Regenerates the paper's headline comparison: the randomized node-averaged
complexity of MIS is lower bounded by Ω(min{log Δ / log log Δ, …}) (Theorem
16) while the minimally relaxed (2,2)-ruling set admits an O(1) node-averaged
algorithm (Theorem 2).  The sweep grows Δ on (near-)regular graphs and
reports the node-averaged complexity of Luby's MIS, the degree-adaptive MIS
and the (2,2)-ruling set algorithm.
"""

from __future__ import annotations

import networkx as nx

from repro.algorithms.mis import GhaffariMIS, LubyMIS
from repro.algorithms.ruling_set import RandomizedTwoTwoRulingSet
from repro.analysis import format_sweep, sweep
from repro.core import problems

from _bench_utils import emit

DEGREES = [4, 8, 16, 32]
N = 400


def run_e1():
    return sweep(
        parameter="delta",
        values=DEGREES,
        graph_factory=lambda d: nx.random_regular_graph(d, N, seed=17),
        algorithms={
            "luby-mis": (lambda net: LubyMIS(), lambda net: problems.MIS),
            "ghaffari-mis": (lambda net: GhaffariMIS(), lambda net: problems.MIS),
            "(2,2)-ruling-set": (
                lambda net: RandomizedTwoTwoRulingSet(),
                lambda net: problems.ruling_set(2, 2),
            ),
        },
        trials=2,
        seed=1,
    )


def test_e1_ruling_set_flat_mis_grows(run_experiment):
    points = run_experiment(run_e1)
    emit(format_sweep(points, title="E1: node-averaged complexity vs Δ (Theorem 2 vs Theorem 16)"))

    by_algorithm = {}
    for point in points:
        by_algorithm.setdefault(point.measurement.algorithm, []).append(
            point.measurement.node_averaged
        )
    ruling = by_algorithm["(2,2)-ruling-set"]
    # Theorem 2 shape: flat in Δ (within a small constant band).
    assert max(ruling) <= 14.0
    assert max(ruling) <= 2.5 * min(ruling) + 2.0
    # The ruling set relaxation beats MIS at the largest degree.
    for mis_name in ("luby-mis", "ghaffari-mis"):
        assert by_algorithm[mis_name][-1] >= ruling[-1] * 0.5
