"""E2 — Theorem 4: randomized maximal matching, edge-averaged O(1) vs worst case O(log n).

The sweep grows ``n`` on sparse random graphs and reports the edge-averaged,
node-averaged and worst-case complexity of the randomized matching algorithm.
The paper's prediction: the edge-averaged column stays flat while the
worst-case column grows (logarithmically) with ``n``, and the node-averaged
column sits in between (Theorem 17 lower-bounds it).
"""

from __future__ import annotations

import networkx as nx

from repro.algorithms.matching import RandomizedMaximalMatching
from repro.analysis import format_sweep, sweep
from repro.core import problems

from _bench_utils import emit

SIZES = [100, 200, 400, 800]


def run_e2():
    return sweep(
        parameter="n",
        values=SIZES,
        graph_factory=lambda n: nx.random_regular_graph(4, n, seed=23),
        algorithms={
            "randomized-matching": (
                lambda net: RandomizedMaximalMatching(),
                lambda net: problems.MAXIMAL_MATCHING,
            ),
        },
        trials=3,
        seed=2,
    )


def test_e2_edge_average_flat_worst_case_grows(run_experiment):
    points = run_experiment(run_e2)
    emit(format_sweep(points, title="E2: randomized maximal matching vs n (Theorem 4)"))

    edge_averages = [p.measurement.edge_averaged for p in points]
    worst_cases = [p.measurement.worst_case for p in points]
    node_averages = [p.measurement.node_averaged for p in points]

    # Edge-averaged complexity is O(1): flat across an 8x growth in n.  (The
    # constant is governed by the 1/(4(d_u+d_v)) marking rate, not by n.)
    assert max(edge_averages) <= 40.0
    assert max(edge_averages) <= 2.0 * min(edge_averages) + 5.0
    # The worst case exceeds the edge average (and tends to grow with n).
    assert worst_cases[-1] > edge_averages[-1]
    # Node-averaged (which waits for all incident edges) dominates edge-averaged.
    for node_avg, edge_avg in zip(node_averages, edge_averages):
        assert node_avg >= edge_avg - 1e-9
