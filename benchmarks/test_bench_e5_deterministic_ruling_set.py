"""E5 — Theorem 3: deterministic ruling sets with O(log* n) node-averaged complexity.

The sweep grows Δ and reports, for both variants of Theorem 3 (the
``(2, O(log Δ))``- and the ``(2, O(log log n))``-ruling set), the node-averaged
and worst-case complexity plus the coverage radius used for validation.
Expected shape: node-averaged complexity essentially independent of Δ (it is
O(log* n) plus the per-iteration constant), worst case noticeably larger.
"""

from __future__ import annotations

import networkx as nx

from repro.algorithms.ruling_set import DeterministicRulingSet
from repro.analysis import format_table, network_from
from repro.core import problems
from repro.core.experiment import evaluate
from repro.local.runner import Runner

from _bench_utils import emit

DEGREES = [4, 8, 16]
N = 300


def run_e5():
    rows = []
    runner = Runner(max_rounds=50_000)
    for degree in DEGREES:
        graph = nx.random_regular_graph(degree, N, seed=53)
        network = network_from(graph, seed=degree)
        for variant in ("log-delta", "log-log-n"):
            algorithm = DeterministicRulingSet.for_network(network, variant=variant)
            problem = problems.ruling_set(2, algorithm.coverage_radius)
            measurement = evaluate(
                lambda: DeterministicRulingSet.for_network(network, variant=variant),
                network,
                problem,
                trials=1,
                runner=runner,
            )
            row = measurement.as_dict()
            row["delta"] = degree
            row["variant"] = variant
            row["beta"] = algorithm.coverage_radius
            rows.append(row)
    return rows


def test_e5_deterministic_ruling_set_average_flat(run_experiment):
    rows = run_experiment(run_e5)
    emit(
        format_table(
            rows,
            columns=["delta", "variant", "beta", "node_averaged", "worst_case", "n", "m"],
            title="E5: deterministic ruling sets vs Δ (Theorem 3)",
        )
    )
    log_delta_rows = [r for r in rows if r["variant"] == "log-delta"]
    averages = [r["node_averaged"] for r in log_delta_rows]
    # Node-averaged complexity is dominated by the (log* n)-style first
    # iterations: it must stay within a narrow band as Δ quadruples.
    assert max(averages) <= 3.0 * min(averages) + 10.0
    for row in rows:
        assert row["node_averaged"] <= row["worst_case"]
    # The coverage radius of the log-delta variant grows with log Δ.
    betas = [r["beta"] for r in log_delta_rows]
    assert betas == sorted(betas)
