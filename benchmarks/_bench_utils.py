"""Small shared utilities for the benchmark modules."""

from __future__ import annotations


def emit(text: str) -> None:
    """Print a benchmark table (visible with ``pytest -s`` and in captured output)."""
    print()
    print(text)
