"""E11 — Appendix A: the chain AVG_V ≤ AVG^w_V ≤ EXP_V ≤ WORST_V.

Measures all four node-complexity notions of Appendix A for one randomized
algorithm per problem and checks that the measured chain is monotone (with
the worst-case weight distribution, for which the weighted average equals the
node expected complexity).
"""

from __future__ import annotations

import networkx as nx

from repro.algorithms.matching import RandomizedMaximalMatching
from repro.algorithms.mis import LubyMIS
from repro.algorithms.orientation import RandomizedSinklessOrientation
from repro.algorithms.ruling_set import RandomizedTwoTwoRulingSet
from repro.analysis import format_table, network_from
from repro.core import problems
from repro.core.experiment import run_trials
from repro.core.metrics import complexity_hierarchy
from repro.local.runner import Runner

from _bench_utils import emit

N = 200


def run_e11():
    runner = Runner(max_rounds=50_000)
    graph = nx.random_regular_graph(4, N, seed=71)
    network = network_from(graph, seed=8)
    min3_graph = nx.random_regular_graph(3, N, seed=72)
    min3_network = network_from(min3_graph, seed=9)

    cases = [
        ("luby-mis", LubyMIS, problems.MIS, network),
        ("(2,2)-ruling-set", RandomizedTwoTwoRulingSet, problems.ruling_set(2, 2), network),
        ("randomized-matching", RandomizedMaximalMatching, problems.MAXIMAL_MATCHING, network),
        (
            "randomized-orientation",
            RandomizedSinklessOrientation,
            problems.SINKLESS_ORIENTATION,
            min3_network,
        ),
    ]
    rows = []
    for name, factory, problem, net in cases:
        traces = run_trials(factory, net, problem, trials=4, seed=0, runner=runner)
        chain = complexity_hierarchy(traces)
        rows.append(
            {
                "algorithm": name,
                "problem": problem.name,
                "avg": round(chain["avg"], 3),
                "weighted_avg": round(chain["weighted_avg"], 3),
                "expected": round(chain["expected"], 3),
                "worst": chain["worst"],
            }
        )
    return rows


def test_e11_hierarchy_is_monotone(run_experiment):
    rows = run_experiment(run_e11)
    emit(
        format_table(
            rows,
            columns=["algorithm", "problem", "avg", "weighted_avg", "expected", "worst"],
            title="E11: AVG_V <= AVG^w_V <= EXP_V <= WORST_V (Appendix A)",
        )
    )
    for row in rows:
        assert row["avg"] <= row["weighted_avg"] + 1e-9
        assert row["weighted_avg"] <= row["expected"] + 1e-9
        assert row["expected"] <= row["worst"] + 1e-9
