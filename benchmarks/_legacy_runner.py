"""The seed (pre-optimisation) runner, vendored for before/after benchmarks.

This is the simulator loop as it existed before the array-backed core
rewrite: per-round inbox dictionaries allocated for *every* vertex, full
``O(n + m)`` completion scans each round, and per-edge ``canonical_edge``
calls during trace collection.  The perf harness (:mod:`core_perf`) runs it
against the optimised :class:`repro.local.runner.Runner` on identical seeds
to (a) measure the speedup recorded in ``BENCH_core.json`` and (b) assert
that the two produce byte-identical traces.

Do not "fix" or optimise this file — its value is being a faithful snapshot
of the seed behaviour.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Optional, Tuple

from repro.core.problems import ProblemSpec
from repro.core.trace import ExecutionTrace
from repro.local.algorithm import Broadcast, NodeAlgorithm
from repro.local.coroutine import CoroutineAlgorithm
from repro.local.network import Network, canonical_edge
from repro.local.node import CommitError, NodeRuntime
from repro.local.runner import RoundLimitExceeded, estimate_message_bits

__all__ = ["LegacyRunner", "LegacyCoroutineDriver"]

_PROGRAM_KEY = "_coroutine_program"
_OUTBOX_KEY = "_coroutine_outbox"


class LegacyCoroutineDriver(NodeAlgorithm):
    """The seed CoroutineAlgorithm plumbing, wrapping a coroutine algorithm.

    The seed stored each node's generator and pending outbox in the
    ``node.state`` dict (today they live in dedicated NodeRuntime slots).
    This wrapper drives the wrapped algorithm's ``run`` generator through the
    seed's state-dict dispatch so the benchmark baseline pays the seed's
    per-node per-round costs.  Execution semantics are identical.
    """

    def __init__(self, algorithm: CoroutineAlgorithm) -> None:
        self._algorithm = algorithm
        self.name = algorithm.name
        self.uses_identifiers = algorithm.uses_identifiers
        self.randomized = algorithm.randomized

    def init(self, node: NodeRuntime) -> None:
        program = self._algorithm.run(node)
        node.state[_PROGRAM_KEY] = program
        self._advance(node, program, None, first=True)

    def send(self, node: NodeRuntime):
        return node.state.get(_OUTBOX_KEY) or {}

    def receive(self, node: NodeRuntime, messages: Dict[int, Any]) -> None:
        program = node.state.get(_PROGRAM_KEY)
        if program is None:
            return
        self._advance(node, program, messages, first=False)

    @staticmethod
    def _advance(node: NodeRuntime, program, messages, first: bool) -> None:
        try:
            outbox = next(program) if first else program.send(messages or {})
        except StopIteration:
            node.state[_PROGRAM_KEY] = None
            node.state[_OUTBOX_KEY] = {}
            node.halt()
            return
        if type(outbox) is Broadcast:
            # The seed had no Broadcast: its algorithms built this exact
            # per-neighbour dict inline, so expanding here reproduces the
            # seed's per-round cost and messages.
            outbox = {u: outbox.payload for u in node.neighbors}
        node.state[_OUTBOX_KEY] = outbox or {}


class LegacyRunner:
    """The seed ``Runner``: O(n + m) bookkeeping per round."""

    def __init__(
        self,
        max_rounds: int = 10_000,
        strict: bool = True,
        track_message_bits: bool = False,
    ) -> None:
        if max_rounds < 0:
            raise ValueError("max_rounds must be non-negative")
        self.max_rounds = max_rounds
        self.strict = strict
        self.track_message_bits = track_message_bits

    # ------------------------------------------------------------------ #

    def run(
        self,
        algorithm: NodeAlgorithm,
        network: Network,
        problem: ProblemSpec,
        seed: Optional[int] = None,
    ) -> ExecutionTrace:
        master_rng = random.Random(seed)
        nodes = self._build_nodes(network, master_rng)

        total_messages = 0
        max_message_bits = 0

        # Round 0: initialisation.
        for node in nodes:
            node._current_round = 0
            algorithm.init(node)

        rounds_executed = 0
        completed = self._is_complete(network, nodes, problem)

        while not completed and rounds_executed < self.max_rounds:
            current_round = rounds_executed + 1

            # Phase 1: every participating node produces its messages based on
            # its state after `rounds_executed` rounds.
            inboxes: Dict[int, Dict[int, Any]] = {v: {} for v in network.vertices}
            for node in nodes:
                if node.halted:
                    continue
                outgoing = algorithm.send(node) or {}
                for target, payload in outgoing.items():
                    if target not in node.neighbors:
                        raise ValueError(
                            f"node {node.vertex} attempted to send to non-neighbour {target}"
                        )
                    inboxes[target][node.vertex] = payload
                    total_messages += 1
                    if self.track_message_bits:
                        max_message_bits = max(max_message_bits, estimate_message_bits(payload))

            # Phase 2: simultaneous delivery and processing.
            for node in nodes:
                if node.halted:
                    continue
                node._current_round = current_round
                algorithm.receive(node, inboxes[node.vertex])

            rounds_executed = current_round
            completed = self._is_complete(network, nodes, problem)

        if not completed and self.strict:
            raise RoundLimitExceeded(
                f"{algorithm.name} did not finish {problem.name} on a graph with "
                f"n={network.n}, m={network.m} within {self.max_rounds} rounds"
            )

        return self._collect_trace(
            algorithm,
            network,
            problem,
            nodes,
            rounds_executed,
            completed,
            total_messages,
            max_message_bits if self.track_message_bits else None,
        )

    # ------------------------------------------------------------------ #

    @staticmethod
    def _build_nodes(network: Network, master_rng: random.Random) -> Tuple[NodeRuntime, ...]:
        nodes = []
        for v in network.vertices:
            node_rng = random.Random(master_rng.getrandbits(64))
            nodes.append(
                NodeRuntime(
                    vertex=v,
                    identifier=network.identifier(v),
                    neighbors=network.neighbors(v),
                    rng=node_rng,
                )
            )
        return tuple(nodes)

    @staticmethod
    def _is_complete(
        network: Network, nodes: Tuple[NodeRuntime, ...], problem: ProblemSpec
    ) -> bool:
        if problem.labels_nodes:
            if any(not node.has_committed for node in nodes):
                return False
        if problem.labels_edges:
            for u, v in network.edges:
                if not (nodes[u].has_committed_edge(v) or nodes[v].has_committed_edge(u)):
                    return False
        if not problem.labels_nodes and not problem.labels_edges:
            return all(node.halted for node in nodes)
        return True

    @staticmethod
    def _collect_trace(
        algorithm: NodeAlgorithm,
        network: Network,
        problem: ProblemSpec,
        nodes: Tuple[NodeRuntime, ...],
        rounds: int,
        completed: bool,
        total_messages: int,
        max_message_bits: Optional[int],
    ) -> ExecutionTrace:
        trace = ExecutionTrace(
            network=network,
            problem=problem,
            rounds=rounds,
            completed=completed,
            total_messages=total_messages,
            max_message_bits=max_message_bits,
            algorithm_name=algorithm.name,
        )
        for node in nodes:
            if node.has_committed:
                trace.node_outputs[node.vertex] = node.output
                trace.node_commit_round[node.vertex] = node.output_round or 0

        for u, v in network.edges:
            edge = canonical_edge(u, v)
            commits = []
            if nodes[u].has_committed_edge(v):
                commits.append((nodes[u]._edge_output_rounds[v], nodes[u].edge_output(v)))
            if nodes[v].has_committed_edge(u):
                commits.append((nodes[v]._edge_output_rounds[u], nodes[v].edge_output(u)))
            if not commits:
                continue
            values = {value for _, value in commits}
            if len(values) > 1:
                raise CommitError(
                    f"endpoints of edge ({u}, {v}) committed conflicting outputs: {values}"
                )
            trace.edge_outputs[edge] = commits[0][1]
            trace.edge_commit_round[edge] = min(rnd for rnd, _ in commits)
        return trace
