"""Before/after perf harness for the array-backed simulation core.

Each benchmark **cell** is one (algorithm, workload, n) combination.  A cell
measures the full simulation-core pipeline — stand up a :class:`Network`
from the workload's edge list, run ``trials`` seeded executions, and compute
the averaged-complexity measurement — through two implementations:

* **seed**: the pipeline as it existed at the seed commit, vendored in
  ``_legacy_network`` / ``_legacy_runner`` / ``_legacy_metrics`` (networkx
  construction, O(n + m) per-round bookkeeping, per-entity completion-time
  recomputation);
* **new**: today's CSR :meth:`Network.from_edges`, the active-set
  :class:`repro.local.runner.Runner`, and the single-pass cached
  measurement path.

Both pipelines consume identical inputs (same edge list, identifiers and
per-trial seeds), and the harness asserts that they produce **identical
traces and byte-identical complexity measurements** before recording any
timing.  Results are written to ``BENCH_core.json`` (see
``benchmarks/README.md`` for the schema); this file is the start of the
repo's perf trajectory — future PRs append comparable runs.

Usage::

    PYTHONPATH=src python benchmarks/core_perf.py            # full suite
    PYTHONPATH=src python benchmarks/core_perf.py --quick    # smoke sizes
    PYTHONPATH=src python benchmarks/core_perf.py --out /tmp/bench.json
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import random
import sys
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
for path in (str(SRC), str(REPO_ROOT / "benchmarks")):
    if path not in sys.path:
        sys.path.insert(0, path)

import networkx as nx

from _legacy_metrics import legacy_measure
from _legacy_network import LegacyNetwork
from _legacy_runner import LegacyCoroutineDriver, LegacyRunner
from repro.algorithms.matching.randomized import RandomizedMaximalMatching
from repro.algorithms.mis.luby import LubyMIS
from repro.algorithms.orientation.randomized import RandomizedSinklessOrientation
from repro.core import problems
from repro.core.experiment import trial_seed
from repro.core.metrics import measure
from repro.graphs import generators as gen
from repro.local import ids as ids_module
from repro.local.coroutine import CoroutineAlgorithm
from repro.local.network import Network
from repro.local.runner import Runner

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_core.json"
SCHEMA = "bench-core/v1"
ID_SEED = 7
MAX_ROUNDS = 20_000


# ---------------------------------------------------------------------- #
# Cell definitions
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class Cell:
    """One (algorithm, workload, n) benchmark cell."""

    algorithm: str
    workload: str
    n: int
    trials: int
    make_algorithm: Callable[[], object]
    problem: object
    make_graph: Callable[[int], nx.Graph]


def _cells(quick: bool) -> List[Cell]:
    def luby(workload: str, make_graph, sizes) -> List[Cell]:
        return [
            Cell("luby-mis", workload, n, 3, LubyMIS, problems.MIS, make_graph)
            for n in sizes
        ]

    if quick:
        return [
            *luby("cycle", gen.cycle_graph, [150]),
            *luby("random-4-regular", lambda n: gen.random_regular_graph(4, n, seed=1), [120]),
            Cell(
                "randomized-matching",
                "random-tree",
                120,
                2,
                RandomizedMaximalMatching,
                problems.MAXIMAL_MATCHING,
                lambda n: gen.random_tree(n, seed=2),
            ),
            Cell(
                "sinkless-orientation",
                "random-4-regular",
                100,
                2,
                RandomizedSinklessOrientation,
                problems.SINKLESS_ORIENTATION,
                lambda n: gen.random_regular_graph(4, n, seed=3),
            ),
        ]

    return [
        *luby("cycle", gen.cycle_graph, [1000, 5000]),
        *luby("random-4-regular", lambda n: gen.random_regular_graph(4, n, seed=1), [1000, 5000]),
        *luby("random-tree", lambda n: gen.random_tree(n, seed=4), [1000, 5000]),
        Cell(
            "randomized-matching",
            "random-4-regular",
            2000,
            2,
            RandomizedMaximalMatching,
            problems.MAXIMAL_MATCHING,
            lambda n: gen.random_regular_graph(4, n, seed=1),
        ),
        Cell(
            "randomized-matching",
            "random-tree",
            3000,
            2,
            RandomizedMaximalMatching,
            problems.MAXIMAL_MATCHING,
            lambda n: gen.random_tree(n, seed=2),
        ),
        Cell(
            "sinkless-orientation",
            "random-4-regular",
            2000,
            2,
            RandomizedSinklessOrientation,
            problems.SINKLESS_ORIENTATION,
            lambda n: gen.random_regular_graph(4, n, seed=3),
        ),
        Cell(
            "sinkless-orientation",
            "min-degree-3",
            2001,
            2,
            RandomizedSinklessOrientation,
            problems.SINKLESS_ORIENTATION,
            lambda n: gen.min_degree_graph(n, 3, seed=5),
        ),
    ]


# ---------------------------------------------------------------------- #
# Pipelines
# ---------------------------------------------------------------------- #


def _workload_inputs(cell: Cell) -> Tuple[int, List[Tuple[int, int]], Dict[int, int]]:
    """Shared, untimed inputs of both pipelines: n, edge list, identifiers."""
    graph = cell.make_graph(cell.n)
    n = graph.number_of_nodes()
    edges = [(u, v) if u < v else (v, u) for u, v in graph.edges()]
    identifiers = ids_module.permuted_ids(list(range(n)), random.Random(ID_SEED))
    return n, edges, identifiers


def _seed_pipeline(cell: Cell, n, edges, identifiers):
    """The seed simulation core: networkx Network, scan-per-round runner, per-entity metrics."""
    timings: Dict[str, float] = {}
    t0 = time.perf_counter()
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    graph.add_edges_from(edges)
    network = LegacyNetwork(graph, identifiers)
    timings["network_s"] = time.perf_counter() - t0

    runner = LegacyRunner(max_rounds=MAX_ROUNDS)

    def make_algorithm():
        algorithm = cell.make_algorithm()
        if isinstance(algorithm, CoroutineAlgorithm):
            return LegacyCoroutineDriver(algorithm)
        return algorithm

    t0 = time.perf_counter()
    traces = [
        runner.run(make_algorithm(), network, cell.problem, seed=trial_seed(0, i))
        for i in range(cell.trials)
    ]
    timings["runner_s"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    measurement = legacy_measure(traces)
    timings["measure_s"] = time.perf_counter() - t0
    timings["total_s"] = sum(timings.values())
    return timings, measurement, traces


def _new_pipeline(cell: Cell, n, edges, identifiers):
    """The array-backed simulation core: CSR network, active-set runner, cached metrics."""
    timings: Dict[str, float] = {}
    t0 = time.perf_counter()
    network = Network.from_edges(n, edges, identifiers)
    timings["network_s"] = time.perf_counter() - t0

    runner = Runner(max_rounds=MAX_ROUNDS)
    t0 = time.perf_counter()
    traces = [
        runner.run(cell.make_algorithm(), network, cell.problem, seed=trial_seed(0, i))
        for i in range(cell.trials)
    ]
    timings["runner_s"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    measurement = measure(traces)
    timings["measure_s"] = time.perf_counter() - t0
    timings["total_s"] = sum(timings.values())
    return timings, measurement, traces


def _traces_identical(a, b) -> bool:
    return (
        a.node_outputs == b.node_outputs
        and a.node_commit_round == b.node_commit_round
        and a.edge_outputs == b.edge_outputs
        and a.edge_commit_round == b.edge_commit_round
        and a.rounds == b.rounds
        and a.completed == b.completed
        and a.total_messages == b.total_messages
    )


def run_cell(cell: Cell, reps: int = 3, validate: bool = True) -> Dict[str, object]:
    """Benchmark one cell; returns its JSON record.

    Raises ``AssertionError`` if the two pipelines disagree on any trace or
    on the complexity measurement.
    """
    if reps < 1:
        raise ValueError("reps must be at least 1")
    n, edges, identifiers = _workload_inputs(cell)

    best_seed: Optional[Dict[str, float]] = None
    best_new: Optional[Dict[str, float]] = None
    seed_measurement = new_measurement = None
    seed_traces = new_traces = None
    for _ in range(reps):
        timings, seed_measurement, seed_traces = _seed_pipeline(cell, n, edges, identifiers)
        if best_seed is None or timings["total_s"] < best_seed["total_s"]:
            best_seed = timings
        timings, new_measurement, new_traces = _new_pipeline(cell, n, edges, identifiers)
        if best_new is None or timings["total_s"] < best_new["total_s"]:
            best_new = timings

    assert seed_measurement == new_measurement, (
        f"measurement mismatch on {cell}: {seed_measurement} != {new_measurement}"
    )
    identical = all(_traces_identical(a, b) for a, b in zip(seed_traces, new_traces))
    assert identical, f"trace mismatch on {cell}"
    if validate:
        for trace in new_traces:
            trace.require_valid()

    return {
        "algorithm": cell.algorithm,
        "workload": cell.workload,
        "n": n,
        "m": len(edges),
        "trials": cell.trials,
        "rounds": [t.rounds for t in new_traces],
        "total_messages": [t.total_messages for t in new_traces],
        "seed": {k: round(v, 6) for k, v in best_seed.items()},
        "new": {k: round(v, 6) for k, v in best_new.items()},
        "speedup": round(best_seed["total_s"] / best_new["total_s"], 3),
        "runner_speedup": round(best_seed["runner_s"] / best_new["runner_s"], 3),
        "identical_traces": identical,
        "measurement": new_measurement.as_dict(),
    }


def run_suite(quick: bool = False, reps: int = 3, validate: bool = True) -> Dict[str, object]:
    """Run every cell and return the full BENCH_core document."""
    records = []
    for cell in _cells(quick):
        record = run_cell(cell, reps=reps, validate=validate)
        records.append(record)
        print(
            f"{record['algorithm']:>22} × {record['workload']:<16} n={record['n']:>5}  "
            f"seed {record['seed']['total_s'] * 1000:8.1f} ms  "
            f"new {record['new']['total_s'] * 1000:8.1f} ms  "
            f"speedup ×{record['speedup']:.2f} (runner ×{record['runner_speedup']:.2f})",
            flush=True,
        )
    return {
        "schema": SCHEMA,
        "quick": quick,
        "reps": reps,
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
        },
        "notes": (
            "Per-cell wall times are best-of-reps for the full simulation-core "
            "pipeline (network construction from the edge list + seeded trials + "
            "averaged-complexity measurement). 'seed' is the vendored seed "
            "implementation; 'new' is the array-backed core. Both consume "
            "identical inputs and the harness asserts identical traces and "
            "byte-identical measurements before timing is recorded."
        ),
        "cells": records,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="tiny smoke-test sizes")
    parser.add_argument("--reps", type=int, default=3, help="repetitions per cell (best is kept)")
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUTPUT)
    parser.add_argument("--no-validate", action="store_true", help="skip solution validation")
    args = parser.parse_args(argv)

    document = run_suite(quick=args.quick, reps=args.reps, validate=not args.no_validate)
    args.out.write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
