"""Before/after perf harness for the array-backed simulation core.

Each benchmark **cell** is one (algorithm, workload, n) combination.  A cell
measures the full simulation-core pipeline — stand up a :class:`Network`
from the workload's edge list, run ``trials`` seeded executions, and compute
the averaged-complexity measurement — through two implementations:

* **seed**: the pipeline as it existed at the seed commit, vendored in
  ``_legacy_network`` / ``_legacy_runner`` / ``_legacy_metrics`` (networkx
  construction, O(n + m) per-round bookkeeping, per-entity completion-time
  recomputation);
* **new**: today's CSR :meth:`Network.from_edges`, the active-set
  :class:`repro.local.runner.Runner`, and the single-pass cached
  measurement path.

Both pipelines consume identical inputs (same edge list, identifiers and
per-trial seeds), and the harness asserts that they produce **identical
traces and byte-identical complexity measurements** before recording any
timing.  Results are written to ``BENCH_core.json`` (see
``benchmarks/README.md`` for the schema); this file is the start of the
repo's perf trajectory — future PRs append comparable runs.

Cells come in eight kinds (schema ``bench-core/v7``):

* ``kind="pipeline"`` — the full generate → run → validate → measure
  pipeline is timed, phase by phase (``network_s``, ``runner_s``,
  ``validate_s``, ``measure_s``).  Seed validation rebuilds the networkx
  export per call (the seed's ``trace.validate()`` behaviour); new
  validation is the CSR fast path.
* ``kind="validate"`` — both pipelines run **untimed** (identity is still
  asserted) and only solution validation is timed, ``validations`` times per
  trace.  These cells isolate the CSR-native validator speedup.
* ``kind="measure"`` (v3) — the *new* pipeline runs untimed to produce
  traces, then the vendored seed measurement (``legacy_measure``, per-entity
  Python loops over dict views) and the numpy measurement path are timed on
  those **identical traces**; agreement is asserted to ≤ 1e-12 relative.
  The trace caches are invalidated before every timed numpy call so each rep
  measures the cold completion-time computation, like the seed side.
* ``kind="generate"`` (v3) — workload generation itself is timed: the
  stream-exact O(n²) Gilbert twin (``erdos_renyi_edges``, the seed side)
  against the geometric-skip ``fast_gnp_edges``.  The two use different
  documented seed schedules, so no edge-list identity is asserted — instead
  both edge counts must fall within a 6σ band of the expected
  ``n·(n−1)/2·p``.
* ``kind="build"`` (v4) — ``Network`` construction alone is timed on one
  shared workload: the tuple-row build (``Network.from_edges`` consuming a
  tuple-per-edge list — the seed side) against the vectorised numpy CSR
  build (``Network.from_endpoint_arrays`` consuming the ``EdgeArrays``
  endpoint arrays).  Both networks are asserted **indistinguishable** after
  timing — same canonical edge tuples, same adjacency rows, same CSR
  arrays, same identifiers — which is what guarantees seed-for-seed
  identical traces through the array path.  Identifiers are sequential so
  the cell isolates the topology build itself.
* ``kind="run"`` (v5) — the **execution-engine race**: the per-node
  coroutine :class:`repro.local.runner.Runner` (the seed side here — it *is*
  today's exact-reference path) against the vectorised
  :class:`repro.local.engine.ArrayEngine` on one shared network, same
  per-trial seed schedule.  The two follow different documented seed
  schedules (per-node Mersenne vs block PCG64 — see
  ``repro/local/engine.py``), so no trace identity exists to assert;
  instead **every trace from both engines must pass the CSR validators**,
  and the structural invariants shared by the two paths are asserted
  (Luby commit-round parity, matching completion rounds ``≡ 3 (mod 4)``).
  The distributional equivalence itself is pinned by the exhaustive seed
  sweeps in ``tests/local/test_engine.py``.
* ``kind="faulted_run"`` (v6) — the engine race **under fault injection**:
  the self-stabilising Luby MIS runs through a deterministic multi-wave
  crash :class:`repro.local.faults.FaultSchedule` on both engines.  The
  timed region includes everything the robustness layer adds per round —
  alive-mask application, fault-event derivation, crashed-neighbour
  restart handling, and the per-round recovery bookkeeping
  (``RecoveryTimeline``).  After timing, every trace on both sides must be
  surviving-valid **and** strictly valid on the induced survivor
  subnetwork, the recorded fault events must agree literally over each
  trial's common round prefix (they derive from the engine-independent
  schedule), and every crash epoch must have restabilised; the committed
  measurement carries the new ``recovery_epochs`` /
  ``mean_time_to_restabilize`` fields.
* ``kind="batched_run"`` (v7) — the **trial-batching race**, entirely
  inside the array engine: the seed side steps ``trials`` single-trial
  :class:`ArrayEngine` runs one after another, the new side steps them all
  together through :meth:`ArrayEngine.run_batch` over ``(T, n)`` /
  ``(T, m)`` state arrays (chunked by the ``batch_chunk`` byte budget).
  Trial ``t`` of the batch draws from the same per-trial
  ``PCG64(trial_seed(0, t))`` stream the loop side uses, so — unlike the
  cross-engine ``run`` race — exact identity exists here and every batched
  trace is asserted **bit-identical** to its single-trial twin
  (batch-size invariance) before any timing is recorded.

Since v3 the seed/new *measurement* comparison of pipeline and validate
cells is asserted to ≤ 1e-12 relative rather than bitwise: the numpy means
use pairwise summation and may differ from ``statistics.mean`` in the last
ulp.  Trace identity stays bitwise.

Usage::

    PYTHONPATH=src python benchmarks/core_perf.py            # full suite
    PYTHONPATH=src python benchmarks/core_perf.py --quick    # smoke sizes
    PYTHONPATH=src python benchmarks/core_perf.py --out /tmp/bench.json
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import pathlib
import pickle
import platform
import random
import sys
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
for path in (str(SRC), str(REPO_ROOT / "benchmarks")):
    if path not in sys.path:
        sys.path.insert(0, path)

import networkx as nx

from _legacy_metrics import legacy_measure
from _legacy_network import LegacyNetwork
from _legacy_runner import LegacyCoroutineDriver, LegacyRunner
from repro.algorithms.matching.randomized import RandomizedMaximalMatching
from repro.algorithms.mis.luby import LubyMIS
from repro.algorithms.orientation.randomized import RandomizedSinklessOrientation
from repro.algorithms.selfstab import SelfStabilizingLubyMIS
from repro.core import problems, schemas
from repro.core.experiment import trial_seed
from repro.core.metrics import measure
from repro.graphs import generators as gen
from repro.local import ids as ids_module
from repro.local.coroutine import CoroutineAlgorithm
from repro.local.engine import ArrayEngine, batch_chunk
from repro.local.faults import FaultSchedule
from repro.local.network import Network
from repro.local.runner import Runner

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_core.json"
SCHEMA = schemas.BENCH_CORE
ID_SEED = 7
MAX_ROUNDS = 20_000
#: Relative tolerance for seed-vs-new measurement agreement (see module doc).
MEASUREMENT_RTOL = 1e-12


# ---------------------------------------------------------------------- #
# Cell definitions
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class Cell:
    """One (algorithm, workload, n) benchmark cell.

    ``make_graph`` may return a networkx graph or an ``(n, edges)`` pair
    from the direct edge-list generators (the only practical option at
    n = 50 000).  ``kind`` selects what is timed: ``"pipeline"`` times the
    full pipeline, ``"validate"`` times solution validation only (the
    pipelines still run untimed so trace identity stays asserted).
    ``reps`` overrides the suite-wide repetition count for expensive cells.
    """

    algorithm: str
    workload: str
    n: int
    trials: int
    make_algorithm: Optional[Callable[[], object]]
    problem: object
    make_graph: Optional[Callable[[int], object]]
    kind: str = "pipeline"
    validations: int = 1
    reps: Optional[int] = None
    #: ``kind="generate"`` only: expected degree of the G(n, p) workload
    #: (``p = expected_degree / (n - 1)``) and the generator seed.
    expected_degree: Optional[float] = None
    gen_seed: int = 1
    #: ``kind="faulted_run"`` only: builds the cell's ``FaultSchedule``
    #: from ``n`` (the schedule is deterministic in ``n`` alone).
    make_faults: Optional[Callable[[int], FaultSchedule]] = None


def _crash_waves(n: int, victims: int, rounds: Tuple[int, ...]) -> FaultSchedule:
    """Deterministic multi-wave crash schedule over evenly-spread vertices."""
    stride = max(1, n // victims)
    crashes = {(i * stride) % n: rounds[i % len(rounds)] for i in range(victims)}
    return FaultSchedule(crashes=crashes, seed=0)


def _cells(quick: bool) -> List[Cell]:
    def luby(workload: str, make_graph, sizes) -> List[Cell]:
        return [
            Cell("luby-mis", workload, n, 3, LubyMIS, problems.MIS, make_graph)
            for n in sizes
        ]

    if quick:
        return [
            *luby("cycle", gen.cycle_graph, [150]),
            *luby("random-4-regular", lambda n: gen.random_regular_graph(4, n, seed=1), [120]),
            Cell(
                "randomized-matching",
                "random-tree",
                120,
                2,
                RandomizedMaximalMatching,
                problems.MAXIMAL_MATCHING,
                lambda n: gen.random_tree(n, seed=2),
            ),
            Cell(
                "sinkless-orientation",
                "random-4-regular",
                100,
                2,
                RandomizedSinklessOrientation,
                problems.SINKLESS_ORIENTATION,
                lambda n: gen.random_regular_graph(4, n, seed=3),
            ),
            # Validation-only cell on a direct edge-list workload: keeps the
            # CSR-native validation path and the (n, edges) plumbing covered
            # by `pytest -m bench_smoke`.
            Cell(
                "luby-mis",
                "random-4-regular-direct",
                400,
                2,
                LubyMIS,
                problems.MIS,
                lambda n: gen.random_regular_edges(4, n, seed=1),
                kind="validate",
                validations=3,
            ),
            # v3 cell kinds, smoke-sized, so `pytest -m bench_smoke` keeps
            # the measurement comparison and the generator race alive.
            Cell(
                "luby-mis",
                "fast-gnp-8",
                400,
                2,
                LubyMIS,
                problems.MIS,
                lambda n: gen.fast_gnp_edges(n, 8.0 / (n - 1), seed=11),
                kind="measure",
            ),
            Cell(
                "gnp-generators",
                "gnp-8",
                300,
                0,
                None,
                None,
                None,
                kind="generate",
                expected_degree=8.0,
            ),
            # v4 cell kind, smoke-sized: the tuple-row vs numpy-CSR Network
            # build race, with full network-indistinguishability asserted.
            Cell(
                "network-build",
                "fast-gnp-8",
                2_000,
                0,
                None,
                None,
                None,
                kind="build",
                expected_degree=8.0,
            ),
            # v5 cell kind, smoke-sized: the coroutine-runner vs array-engine
            # race, with validator-verified outputs on both sides.
            Cell(
                "luby-mis",
                "fast-gnp-8",
                2_000,
                2,
                LubyMIS,
                problems.MIS,
                None,
                kind="run",
                expected_degree=8.0,
            ),
            Cell(
                "randomized-matching",
                "fast-gnp-5",
                800,
                1,
                RandomizedMaximalMatching,
                problems.MAXIMAL_MATCHING,
                None,
                kind="run",
                expected_degree=5.0,
            ),
            # v7 cell kind, smoke-sized: the trial-batching race inside the
            # array engine, with bit-identical traces asserted (batch-size
            # invariance is part of the smoke contract).
            Cell(
                "luby-mis",
                "fast-gnp-8",
                1_500,
                16,
                LubyMIS,
                problems.MIS,
                None,
                kind="batched_run",
                expected_degree=8.0,
            ),
            Cell(
                "randomized-matching",
                "fast-gnp-5",
                600,
                8,
                RandomizedMaximalMatching,
                problems.MAXIMAL_MATCHING,
                None,
                kind="batched_run",
                expected_degree=5.0,
            ),
            # v6 cell kind, smoke-sized: the fault-injected engine race on
            # the self-stabilising Luby MIS, two crash waves, recovery
            # asserted on both sides.
            Cell(
                "selfstab-luby-mis",
                "fast-gnp-8",
                1_000,
                2,
                SelfStabilizingLubyMIS,
                problems.MIS,
                None,
                kind="faulted_run",
                expected_degree=8.0,
                make_faults=lambda n: _crash_waves(n, 12, (2, 14)),
            ),
        ]

    return [
        *luby("cycle", gen.cycle_graph, [1000, 5000]),
        *luby("random-4-regular", lambda n: gen.random_regular_graph(4, n, seed=1), [1000, 5000]),
        *luby("random-tree", lambda n: gen.random_tree(n, seed=4), [1000, 5000]),
        Cell(
            "randomized-matching",
            "random-4-regular",
            2000,
            2,
            RandomizedMaximalMatching,
            problems.MAXIMAL_MATCHING,
            lambda n: gen.random_regular_graph(4, n, seed=1),
        ),
        Cell(
            "randomized-matching",
            "random-tree",
            3000,
            2,
            RandomizedMaximalMatching,
            problems.MAXIMAL_MATCHING,
            lambda n: gen.random_tree(n, seed=2),
        ),
        Cell(
            "sinkless-orientation",
            "random-4-regular",
            2000,
            2,
            RandomizedSinklessOrientation,
            problems.SINKLESS_ORIENTATION,
            lambda n: gen.random_regular_graph(4, n, seed=3),
        ),
        Cell(
            "sinkless-orientation",
            "min-degree-3",
            2001,
            2,
            RandomizedSinklessOrientation,
            problems.SINKLESS_ORIENTATION,
            lambda n: gen.min_degree_graph(n, 3, seed=5),
        ),
        # ---- validation-heavy cells (CSR validators vs nx export + nx scan) ----
        Cell(
            "luby-mis",
            "random-4-regular",
            20_000,
            1,
            LubyMIS,
            problems.MIS,
            lambda n: gen.random_regular_edges(4, n, seed=1),
            kind="validate",
            validations=5,
            reps=2,
        ),
        Cell(
            "luby-mis-as-ruling-set",
            "random-4-regular",
            20_000,
            1,
            LubyMIS,
            problems.ruling_set(2, 1),
            lambda n: gen.random_regular_edges(4, n, seed=1),
            kind="validate",
            validations=5,
            reps=2,
        ),
        Cell(
            "randomized-matching",
            "random-tree",
            20_000,
            1,
            RandomizedMaximalMatching,
            problems.MAXIMAL_MATCHING,
            lambda n: gen.random_tree(n, seed=2),
            kind="validate",
            validations=5,
            reps=2,
        ),
        Cell(
            "sinkless-orientation",
            "random-4-regular",
            10_000,
            1,
            RandomizedSinklessOrientation,
            problems.SINKLESS_ORIENTATION,
            lambda n: gen.random_regular_edges(4, n, seed=3),
            kind="validate",
            validations=5,
            reps=2,
        ),
        # ---- n = 50 000 end-to-end cell (direct edge-list generator) ----
        Cell(
            "luby-mis",
            "random-4-regular-direct",
            50_000,
            2,
            LubyMIS,
            problems.MIS,
            lambda n: gen.random_regular_edges(4, n, seed=1),
            reps=1,
        ),
        # ---- measurement-only cells (numpy reductions vs seed Python loops) ----
        Cell(
            "luby-mis",
            "fast-gnp-10",
            100_000,
            2,
            LubyMIS,
            problems.MIS,
            lambda n: gen.fast_gnp_edges(n, 10.0 / (n - 1), seed=11),
            kind="measure",
            reps=2,
        ),
        Cell(
            "randomized-matching",
            "random-4-regular-direct",
            30_000,
            2,
            RandomizedMaximalMatching,
            problems.MAXIMAL_MATCHING,
            lambda n: gen.random_regular_edges(4, n, seed=1),
            kind="measure",
            reps=2,
        ),
        # ---- generator race: geometric skip vs the stream-exact Gilbert loop ----
        Cell(
            "gnp-generators",
            "gnp-10",
            1_000,
            0,
            None,
            None,
            None,
            kind="generate",
            expected_degree=10.0,
        ),
        Cell(
            "gnp-generators",
            "gnp-10",
            10_000,
            0,
            None,
            None,
            None,
            kind="generate",
            expected_degree=10.0,
            reps=1,
        ),
        # ---- Network-build race: tuple-row build vs numpy CSR build ----
        # m = 10^5 and m = 10^6 G(n, 10/(n-1)) workloads (ISSUE 4): the
        # tuple side consumes a tuple-per-edge list through from_edges, the
        # array side consumes the same EdgeArrays through
        # from_endpoint_arrays; indistinguishability is asserted after the
        # timed reps.
        Cell(
            "network-build",
            "fast-gnp-10",
            20_000,
            0,
            None,
            None,
            None,
            kind="build",
            expected_degree=10.0,
        ),
        Cell(
            "network-build",
            "fast-gnp-10",
            200_000,
            0,
            None,
            None,
            None,
            kind="build",
            expected_degree=10.0,
            reps=2,
        ),
        # ---- execution-engine race: coroutine runner vs array engine ----
        # The acceptance cell of ISSUE 5: Luby MIS at n = 10^5 must be >= 5x
        # faster on the array engine, with validator-verified outputs on
        # both sides; the n = 10^6 cell documents the million-node frontier.
        Cell(
            "luby-mis",
            "fast-gnp-10",
            100_000,
            2,
            LubyMIS,
            problems.MIS,
            None,
            kind="run",
            expected_degree=10.0,
            reps=2,
        ),
        Cell(
            "randomized-matching",
            "fast-gnp-10",
            100_000,
            1,
            RandomizedMaximalMatching,
            problems.MAXIMAL_MATCHING,
            None,
            kind="run",
            expected_degree=10.0,
            reps=1,
        ),
        Cell(
            "luby-mis",
            "fast-gnp-10",
            1_000_000,
            1,
            LubyMIS,
            problems.MIS,
            None,
            kind="run",
            expected_degree=10.0,
            reps=1,
        ),
        # ---- trial-batching race: run_batch vs the single-trial loop ----
        # Both n = 10^4 cells run the ISSUE 8 acceptance shape (T = 1000),
        # with every batched trace bit-identical to its single-trial twin;
        # see benchmarks/README.md "Acceptance status (PR 8)" for how the
        # measured ratios relate to the >= 3x target after this PR's GC
        # fix sped the single-trial baseline itself.  The n = 10^5 cell
        # exercises the batch_chunk cache budget at scale.
        Cell(
            "luby-mis",
            "fast-gnp-10",
            10_000,
            1_000,
            LubyMIS,
            problems.MIS,
            None,
            kind="batched_run",
            expected_degree=10.0,
            reps=1,
        ),
        Cell(
            "randomized-matching",
            "fast-gnp-10",
            10_000,
            1_000,
            RandomizedMaximalMatching,
            problems.MAXIMAL_MATCHING,
            None,
            kind="batched_run",
            expected_degree=10.0,
            reps=1,
        ),
        Cell(
            "luby-mis",
            "fast-gnp-10",
            100_000,
            50,
            LubyMIS,
            problems.MIS,
            None,
            kind="batched_run",
            expected_degree=10.0,
            reps=1,
        ),
        # ---- fault-injected engine race: self-stabilising Luby MIS ----
        # Three crash waves; both engines must re-stabilise after every
        # wave, with engine-identical fault events and strict validity on
        # the induced survivor subnetwork (ISSUE 7).
        Cell(
            "selfstab-luby-mis",
            "fast-gnp-10",
            20_000,
            2,
            SelfStabilizingLubyMIS,
            problems.MIS,
            None,
            kind="faulted_run",
            expected_degree=10.0,
            reps=2,
            make_faults=lambda n: _crash_waves(n, 200, (2, 14, 26)),
        ),
        Cell(
            "selfstab-luby-mis",
            "fast-gnp-10",
            100_000,
            2,
            SelfStabilizingLubyMIS,
            problems.MIS,
            None,
            kind="faulted_run",
            expected_degree=10.0,
            reps=1,
            make_faults=lambda n: _crash_waves(n, 1_000, (2, 14, 26)),
        ),
    ]


# ---------------------------------------------------------------------- #
# Pipelines
# ---------------------------------------------------------------------- #


def _workload_inputs(cell: Cell) -> Tuple[int, List[Tuple[int, int]], Dict[int, int]]:
    """Shared, untimed inputs of both pipelines: n, edge list, identifiers.

    ``make_graph`` may hand back a networkx graph or a direct ``(n, edges)``
    pair; both sides of the comparison consume the same canonical edge list
    either way.
    """
    workload = cell.make_graph(cell.n)
    if isinstance(workload, tuple):
        n, raw_edges = workload
    else:
        n = workload.number_of_nodes()
        raw_edges = workload.edges()
    edges = [(u, v) if u < v else (v, u) for u, v in raw_edges]
    identifiers = ids_module.permuted_ids(list(range(n)), random.Random(ID_SEED))
    return n, edges, identifiers


def _seed_export(n: int, edges: List[Tuple[int, int]]) -> nx.Graph:
    """The seed ``Network.to_networkx``: a fresh graph built per call."""
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    graph.add_edges_from(edges)
    return graph


def _seed_validate(cell: Cell, n, edges, trace) -> bool:
    """One seed-pipeline validation: fresh networkx export + nx validators."""
    graph = _seed_export(n, edges)
    return bool(cell.problem.validate(graph, trace.node_outputs, trace.edge_outputs))


def _seed_pipeline(cell: Cell, n, edges, identifiers, validations: int = 0):
    """The seed simulation core: networkx Network, scan-per-round runner, per-entity metrics."""
    timings: Dict[str, float] = {}
    t0 = time.perf_counter()
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    graph.add_edges_from(edges)
    network = LegacyNetwork(graph, identifiers)
    timings["network_s"] = time.perf_counter() - t0

    runner = LegacyRunner(max_rounds=MAX_ROUNDS)

    def make_algorithm():
        algorithm = cell.make_algorithm()
        if isinstance(algorithm, CoroutineAlgorithm):
            return LegacyCoroutineDriver(algorithm)
        return algorithm

    t0 = time.perf_counter()
    traces = [
        runner.run(make_algorithm(), network, cell.problem, seed=trial_seed(0, i))
        for i in range(cell.trials)
    ]
    timings["runner_s"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    for trace in traces:
        for _ in range(validations):
            assert _seed_validate(cell, n, edges, trace)
    timings["validate_s"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    measurement = legacy_measure(traces)
    timings["measure_s"] = time.perf_counter() - t0
    timings["total_s"] = sum(timings.values())
    return timings, measurement, traces


def _new_pipeline(cell: Cell, n, edges, identifiers, validations: int = 0):
    """The array-backed simulation core: CSR network, active-set runner, cached metrics."""
    timings: Dict[str, float] = {}
    t0 = time.perf_counter()
    network = Network.from_edges(n, edges, identifiers)
    timings["network_s"] = time.perf_counter() - t0

    runner = Runner(max_rounds=MAX_ROUNDS)
    t0 = time.perf_counter()
    traces = [
        runner.run(cell.make_algorithm(), network, cell.problem, seed=trial_seed(0, i))
        for i in range(cell.trials)
    ]
    timings["runner_s"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    for trace in traces:
        for _ in range(validations):
            trace.require_valid()
    timings["validate_s"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    measurement = measure(traces)
    timings["measure_s"] = time.perf_counter() - t0
    timings["total_s"] = sum(timings.values())
    return timings, measurement, traces


def _traces_identical(a, b) -> bool:
    return (
        a.node_outputs == b.node_outputs
        and a.node_commit_round == b.node_commit_round
        and a.edge_outputs == b.edge_outputs
        and a.edge_commit_round == b.edge_commit_round
        and a.rounds == b.rounds
        and a.completed == b.completed
        and a.total_messages == b.total_messages
    )


def _trace_digest(trace) -> bytes:
    """SHA-256 over the flat trace content — :func:`_traces_identical` per fingerprint.

    The batched cells compare ``trials`` reference traces against the batch
    output.  At T = 1000 / n = 10^4 holding the references alive while the
    batch side is timed means ~10^7 extra live objects: gen-2 GC scans and
    cache pollution that tax the second timed region but belong to neither
    engine.  Fingerprinting the loop side's traces (32 bytes each) and
    freeing them before the batch timer starts keeps each side timed under
    its own natural memory load.  Both sides of a batched cell are built by
    :meth:`ExecutionTrace.from_arrays`, so the flat slot storage is
    canonical; it is a superset of what :func:`_traces_identical` compares
    (uncommitted slots included), hence equal digests ⇒ identical traces.
    """
    payload = (
        trace.rounds,
        trace.completed,
        trace.total_messages,
        tuple(trace._node_values),
        trace._node_rounds.tobytes(),
        tuple(trace._edge_values),
        trace._edge_rounds.tobytes(),
    )
    return hashlib.sha256(pickle.dumps(payload, protocol=4)).digest()


def _measurements_close(a, b, rtol: float = MEASUREMENT_RTOL) -> bool:
    """Seed/new measurement agreement: exact metadata, ≤ ``rtol`` on the floats.

    The float fields are the only place the two paths may legitimately
    diverge (numpy's pairwise-summed means vs ``statistics.mean``'s exact
    rational mean — a last-ulp difference); everything else must be equal.
    """
    if (a.algorithm, a.problem, a.n, a.m, a.trials, a.worst_case) != (
        b.algorithm,
        b.problem,
        b.n,
        b.m,
        b.trials,
        b.worst_case,
    ):
        return False
    pairs = (
        (a.node_averaged, b.node_averaged),
        (a.edge_averaged, b.edge_averaged),
        (a.node_expected, b.node_expected),
        (a.edge_expected, b.edge_expected),
    )
    return all(abs(x - y) <= rtol * max(1.0, abs(x), abs(y)) for x, y in pairs)


def run_cell(cell: Cell, reps: int = 3, validate: bool = True) -> Dict[str, object]:
    """Benchmark one cell; returns its JSON record.

    Raises ``AssertionError`` if the two pipelines disagree on any trace, on
    the complexity measurement, or on solution validity.
    """
    if reps < 1:
        raise ValueError("reps must be at least 1")
    if cell.reps is not None:
        reps = cell.reps
    if cell.kind == "generate":
        return _run_generate_cell(cell, reps)
    if cell.kind == "build":
        return _run_build_cell(cell, reps)
    if cell.kind == "run":
        return _run_engine_cell(cell, reps)
    if cell.kind == "batched_run":
        return _run_batched_cell(cell, reps)
    if cell.kind == "faulted_run":
        return _run_faulted_cell(cell, reps)
    n, edges, identifiers = _workload_inputs(cell)
    if cell.kind == "validate":
        return _run_validate_cell(cell, n, edges, identifiers, reps)
    if cell.kind == "measure":
        return _run_measure_cell(cell, n, edges, identifiers, reps)

    validations = cell.validations if validate else 0
    best_seed: Optional[Dict[str, float]] = None
    best_new: Optional[Dict[str, float]] = None
    seed_measurement = new_measurement = None
    seed_traces = new_traces = None
    for _ in range(reps):
        timings, seed_measurement, seed_traces = _seed_pipeline(
            cell, n, edges, identifiers, validations=validations
        )
        if best_seed is None or timings["total_s"] < best_seed["total_s"]:
            best_seed = timings
        timings, new_measurement, new_traces = _new_pipeline(
            cell, n, edges, identifiers, validations=validations
        )
        if best_new is None or timings["total_s"] < best_new["total_s"]:
            best_new = timings

    assert _measurements_close(seed_measurement, new_measurement), (
        f"measurement mismatch on {cell}: {seed_measurement} != {new_measurement}"
    )
    identical = all(_traces_identical(a, b) for a, b in zip(seed_traces, new_traces))
    assert identical, f"trace mismatch on {cell}"

    record = {
        "algorithm": cell.algorithm,
        "workload": cell.workload,
        "kind": cell.kind,
        "n": n,
        "m": len(edges),
        "trials": cell.trials,
        "validations": validations,
        "rounds": [t.rounds for t in new_traces],
        "total_messages": [t.total_messages for t in new_traces],
        "seed": {k: round(v, 6) for k, v in best_seed.items()},
        "new": {k: round(v, 6) for k, v in best_new.items()},
        "speedup": round(best_seed["total_s"] / best_new["total_s"], 3),
        "runner_speedup": round(best_seed["runner_s"] / best_new["runner_s"], 3),
        "identical_traces": identical,
        "measurement": new_measurement.as_dict(),
    }
    if validations and best_new["validate_s"] > 0:
        record["validate_speedup"] = round(best_seed["validate_s"] / best_new["validate_s"], 3)
    return record


def _run_validate_cell(cell: Cell, n, edges, identifiers, reps: int) -> Dict[str, object]:
    """A ``kind="validate"`` cell: pipelines run untimed, validation is timed.

    Trace and measurement identity between the pipelines is still asserted,
    so these cells keep the same correctness guarantees as pipeline cells —
    they just isolate the validator comparison: the seed side re-exports the
    topology to networkx per call (the seed ``trace.validate()``), the new
    side is the CSR-native fast path on the trace's array storage.
    """
    _, seed_measurement, seed_traces = _seed_pipeline(cell, n, edges, identifiers)
    _, new_measurement, new_traces = _new_pipeline(cell, n, edges, identifiers)
    assert _measurements_close(seed_measurement, new_measurement), (
        f"measurement mismatch on {cell}"
    )
    identical = all(_traces_identical(a, b) for a, b in zip(seed_traces, new_traces))
    assert identical, f"trace mismatch on {cell}"
    for trace in new_traces:
        trace.require_valid()

    best_seed_s = best_new_s = None
    for _ in range(reps):
        t0 = time.perf_counter()
        for trace in seed_traces:
            for _ in range(cell.validations):
                assert _seed_validate(cell, n, edges, trace)
        seed_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        for trace in new_traces:
            for _ in range(cell.validations):
                assert bool(trace.validate())
        new_s = time.perf_counter() - t0
        if best_seed_s is None or seed_s < best_seed_s:
            best_seed_s = seed_s
        if best_new_s is None or new_s < best_new_s:
            best_new_s = new_s

    return {
        "algorithm": cell.algorithm,
        "workload": cell.workload,
        "kind": cell.kind,
        "n": n,
        "m": len(edges),
        "trials": cell.trials,
        "validations": cell.validations,
        "rounds": [t.rounds for t in new_traces],
        "total_messages": [t.total_messages for t in new_traces],
        "seed": {"validate_s": round(best_seed_s, 6), "total_s": round(best_seed_s, 6)},
        "new": {"validate_s": round(best_new_s, 6), "total_s": round(best_new_s, 6)},
        "speedup": round(best_seed_s / best_new_s, 3),
        "validate_speedup": round(best_seed_s / best_new_s, 3),
        "identical_traces": identical,
        "measurement": new_measurement.as_dict(),
    }


def _run_measure_cell(cell: Cell, n, edges, identifiers, reps: int) -> Dict[str, object]:
    """A ``kind="measure"`` cell: the measurement layer alone is timed.

    The *new* pipeline runs once, untimed, to produce traces; the vendored
    seed measurement (`legacy_measure`, per-entity Python loops over the dict
    views) and the numpy measurement path then race on those identical
    traces.  The dict views are materialised before timing so the seed side
    is not charged for the lazy array→dict derivation, and the trace's
    completion-time caches are invalidated before every timed numpy call so
    each rep measures the cold path (completion-time computation included),
    exactly like the seed side recomputes per call.  Agreement between the
    two measurements is asserted to ≤ 1e-12 relative.
    """
    _, _, traces = _new_pipeline(cell, n, edges, identifiers)
    for trace in traces:
        trace.node_outputs, trace.node_commit_round  # noqa: B018 - materialise
        trace.edge_outputs, trace.edge_commit_round  # noqa: B018 - dict views
    seed_measurement = new_measurement = None
    best_seed_s = best_new_s = None
    for _ in range(reps):
        t0 = time.perf_counter()
        seed_measurement = legacy_measure(traces)
        seed_s = time.perf_counter() - t0
        for trace in traces:
            trace._invalidate_times()
        t0 = time.perf_counter()
        new_measurement = measure(traces)
        new_s = time.perf_counter() - t0
        if best_seed_s is None or seed_s < best_seed_s:
            best_seed_s = seed_s
        if best_new_s is None or new_s < best_new_s:
            best_new_s = new_s
    assert _measurements_close(seed_measurement, new_measurement), (
        f"measurement mismatch on {cell}: {seed_measurement} != {new_measurement}"
    )

    return {
        "algorithm": cell.algorithm,
        "workload": cell.workload,
        "kind": cell.kind,
        "n": n,
        "m": len(edges),
        "trials": cell.trials,
        "rounds": [t.rounds for t in traces],
        "total_messages": [t.total_messages for t in traces],
        "seed": {"measure_s": round(best_seed_s, 6), "total_s": round(best_seed_s, 6)},
        "new": {"measure_s": round(best_new_s, 6), "total_s": round(best_new_s, 6)},
        "speedup": round(best_seed_s / best_new_s, 3),
        "measure_speedup": round(best_seed_s / best_new_s, 3),
        "measurement_agreement_rtol": MEASUREMENT_RTOL,
        "measurement": new_measurement.as_dict(),
    }


def _run_build_cell(cell: Cell, reps: int) -> Dict[str, object]:
    """A ``kind="build"`` cell: ``Network`` construction alone is timed.

    One ``G(n, p)`` workload is generated untimed through the array-native
    ``fast_gnp_edges(..., as_arrays=True)`` path; the **seed** side then
    builds the network from the tuple-per-edge list (``Network.from_edges``
    — the tuple-row build, today's default path), the **new** side from the
    flat endpoint arrays (``Network.from_endpoint_arrays`` — the vectorised
    numpy CSR build).  Identifiers are sequential on both sides so the cell
    isolates the topology build.  After timing, the two networks are
    asserted indistinguishable: same canonical edge tuples, same sorted
    adjacency rows, same CSR arrays, same identifiers — the invariant that
    makes traces through the array path seed-for-seed identical.
    """
    import numpy as np

    n = cell.n
    expected_degree = float(cell.expected_degree)
    p = expected_degree / (n - 1)
    arrays = gen.fast_gnp_edges(n, p, seed=cell.gen_seed, as_arrays=True)
    edges = arrays.as_pairs()  # untimed: the tuple side's input

    best_seed_s = best_new_s = None
    tuple_network = array_network = None
    for _ in range(reps):
        t0 = time.perf_counter()
        tuple_network = Network.from_edges(n, edges)
        seed_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        array_network = Network.from_endpoint_arrays(n, arrays.src, arrays.dst)
        new_s = time.perf_counter() - t0
        if best_seed_s is None or seed_s < best_seed_s:
            best_seed_s = seed_s
        if best_new_s is None or new_s < best_new_s:
            best_new_s = new_s

    assert tuple_network.n == array_network.n and tuple_network.m == array_network.m
    assert tuple_network.edges == array_network.edges, f"edge mismatch on {cell}"
    assert tuple_network._adjacency == array_network._adjacency, (
        f"adjacency mismatch on {cell}"
    )
    assert tuple_network.identifiers == array_network.identifiers
    assert np.array_equal(
        np.frombuffer(tuple_network.indptr, dtype=np.int64),
        np.asarray(array_network.indptr),
    )
    assert np.array_equal(
        np.frombuffer(tuple_network.indices, dtype=np.int64),
        np.asarray(array_network.indices),
    )
    assert (
        tuple_network.max_degree() == array_network.max_degree()
        and tuple_network.min_degree() == array_network.min_degree()
        and tuple_network.id_bit_length() == array_network.id_bit_length()
    )

    return {
        "algorithm": cell.algorithm,
        "workload": cell.workload,
        "kind": cell.kind,
        "n": n,
        "m": array_network.m,
        "p": p,
        "seed": {"network_s": round(best_seed_s, 6), "total_s": round(best_seed_s, 6)},
        "new": {"network_s": round(best_new_s, 6), "total_s": round(best_new_s, 6)},
        "speedup": round(best_seed_s / best_new_s, 3),
        "build_speedup": round(best_seed_s / best_new_s, 3),
        "identical_networks": True,
    }


def _run_engine_cell(cell: Cell, reps: int) -> Dict[str, object]:
    """A ``kind="run"`` cell: the coroutine-runner vs array-engine race.

    One ``G(n, p)`` workload is generated untimed through
    ``fast_gnp_edges(..., as_arrays=True)`` and stood up once through the
    numpy CSR build (sequential identifiers); the **seed** side then runs
    the trials on the per-node coroutine :class:`Runner` (today's exact
    reference path), the **new** side on the vectorised
    :class:`ArrayEngine`, both with the ``trial_seed`` schedule.  The two
    follow different documented seed schedules (per-node Mersenne vs block
    PCG64), so there is no trace identity to assert — instead every trace
    from both engines is validator-verified, and the structural invariants
    the two paths share are checked (Luby joins at odd rounds / removals at
    even; matching completions at rounds ``≡ 3 (mod 4)``).  The
    distributional equivalence is pinned separately by the exhaustive seed
    sweeps in ``tests/local/test_engine.py``.
    """
    n = cell.n
    expected_degree = float(cell.expected_degree)
    p = expected_degree / (n - 1)
    arrays = gen.fast_gnp_edges(n, p, seed=cell.gen_seed, as_arrays=True)
    network = Network.from_endpoint_arrays(n, arrays.src, arrays.dst)

    best_seed_s = best_new_s = None
    seed_traces = new_traces = None
    for _ in range(reps):
        runner = Runner(max_rounds=MAX_ROUNDS)
        t0 = time.perf_counter()
        seed_traces = [
            runner.run(cell.make_algorithm(), network, cell.problem, seed=trial_seed(0, i))
            for i in range(cell.trials)
        ]
        seed_s = time.perf_counter() - t0
        engine = ArrayEngine(max_rounds=MAX_ROUNDS)
        t0 = time.perf_counter()
        new_traces = [
            engine.run(
                cell.make_algorithm().as_array_algorithm(),
                network,
                cell.problem,
                seed=trial_seed(0, i),
            )
            for i in range(cell.trials)
        ]
        new_s = time.perf_counter() - t0
        if best_seed_s is None or seed_s < best_seed_s:
            best_seed_s = seed_s
        if best_new_s is None or new_s < best_new_s:
            best_new_s = new_s

    for trace in (*seed_traces, *new_traces):
        trace.require_valid()
    if cell.problem.labels_edges and not cell.problem.labels_nodes:
        for trace in (*seed_traces, *new_traces):
            assert trace.rounds % 4 == 3, f"matching completion round parity on {cell}"

    return {
        "algorithm": cell.algorithm,
        "workload": cell.workload,
        "kind": cell.kind,
        "n": n,
        "m": network.m,
        "p": p,
        "trials": cell.trials,
        "rounds": [t.rounds for t in new_traces],
        "seed_rounds": [t.rounds for t in seed_traces],
        "total_messages": [t.total_messages for t in new_traces],
        "seed_total_messages": [t.total_messages for t in seed_traces],
        "seed": {"runner_s": round(best_seed_s, 6), "total_s": round(best_seed_s, 6)},
        "new": {"runner_s": round(best_new_s, 6), "total_s": round(best_new_s, 6)},
        "speedup": round(best_seed_s / best_new_s, 3),
        "run_speedup": round(best_seed_s / best_new_s, 3),
        "validated_outputs": True,
        "measurement": measure(new_traces).as_dict(),
    }


def _run_batched_cell(cell: Cell, reps: int) -> Dict[str, object]:
    """A ``kind="batched_run"`` cell: trial loop vs trial-batched array engine.

    Both sides *are* the :class:`ArrayEngine` — the seed side steps
    ``trials`` single-trial runs one after another, the new side steps them
    all together through :meth:`ArrayEngine.run_batch` over ``(T, n)`` /
    ``(T, m)`` state arrays (chunked by the ``batch_chunk`` byte budget).
    Trial ``t`` of the batch draws from its own ``PCG64(trial_seed(0, t))``
    stream — the same stream the loop side uses — so this is the one engine
    race with exact identity to assert: every batched trace must be
    **bit-identical** to its single-trial twin, and all traces must pass the
    CSR validators, before any timing is recorded.  Identity is asserted
    via :func:`_trace_digest` fingerprints taken outside the timed regions,
    so neither side is timed while the other side's ~10^7-object reference
    traces are live (tuple-level identity at small T is pinned separately in
    ``tests/local/test_batch.py``).
    """
    n = cell.n
    expected_degree = float(cell.expected_degree)
    p = expected_degree / (n - 1)
    arrays = gen.fast_gnp_edges(n, p, seed=cell.gen_seed, as_arrays=True)
    network = Network.from_endpoint_arrays(n, arrays.src, arrays.dst)
    seeds = [trial_seed(0, i) for i in range(cell.trials)]

    best_seed_s = best_new_s = None
    seed_digests = batch_traces = None
    for _ in range(reps):
        engine = ArrayEngine(max_rounds=MAX_ROUNDS)
        t0 = time.perf_counter()
        loop_traces = [
            engine.run(
                cell.make_algorithm().as_array_algorithm(),
                network,
                cell.problem,
                seed=seed,
            )
            for seed in seeds
        ]
        seed_s = time.perf_counter() - t0
        # Untimed: fingerprint and free the reference traces, so the batch
        # timer below never runs against the loop side's live trace objects
        # (a harness artifact neither engine pays for in real use).
        seed_digests = [_trace_digest(trace) for trace in loop_traces]
        del loop_traces
        engine = ArrayEngine(max_rounds=MAX_ROUNDS)
        t0 = time.perf_counter()
        batch_traces = engine.run_batch(
            cell.make_algorithm().as_array_algorithm(),
            network,
            cell.problem,
            seeds,
        )
        new_s = time.perf_counter() - t0
        if best_seed_s is None or seed_s < best_seed_s:
            best_seed_s = seed_s
        if best_new_s is None or new_s < best_new_s:
            best_new_s = new_s

    assert len(batch_traces) == cell.trials == len(seed_digests)
    for seed_digest, batch_trace in zip(seed_digests, batch_traces):
        assert _trace_digest(batch_trace) == seed_digest, (
            f"batch-size invariance violated on {cell}"
        )
    for trace in batch_traces:
        trace.require_valid()

    return {
        "algorithm": cell.algorithm,
        "workload": cell.workload,
        "kind": cell.kind,
        "n": n,
        "m": network.m,
        "p": p,
        "trials": cell.trials,
        "chunk": batch_chunk(network.n, network.m, cell.trials),
        "rounds": [t.rounds for t in batch_traces],
        "total_messages": [t.total_messages for t in batch_traces],
        "seed": {"runner_s": round(best_seed_s, 6), "total_s": round(best_seed_s, 6)},
        "new": {"runner_s": round(best_new_s, 6), "total_s": round(best_new_s, 6)},
        "speedup": round(best_seed_s / best_new_s, 3),
        "batched_speedup": round(best_seed_s / best_new_s, 3),
        "identical_traces": True,
        "validated_outputs": True,
        "measurement": measure(batch_traces).as_dict(),
    }


def _run_faulted_cell(cell: Cell, reps: int) -> Dict[str, object]:
    """A ``kind="faulted_run"`` cell: the engine race under fault injection.

    Same shape as :func:`_run_engine_cell` — one untimed ``G(n, p)``
    workload, one shared CSR network, the coroutine :class:`Runner` as the
    seed side and the :class:`ArrayEngine` as the new side — but every run
    executes through the cell's deterministic crash-wave
    :class:`FaultSchedule`, so the timed region includes the robustness
    layer: alive-mask application, fault-event derivation, restart-on-crash
    handling, and the per-round recovery bookkeeping of self-stabilising
    algorithms.  After timing the harness asserts, for every trace on both
    sides: surviving-subgraph validity (``require_valid``), strict validity
    on the induced survivor subnetwork (``validate_induced`` — recovery may
    not be credited to crashed nodes), literal fault-event agreement over
    each trial's common round prefix (the schedule is engine-independent),
    and — when the algorithm is self-stabilising — a complete
    :class:`RecoveryTimeline` in which **every crash epoch restabilised**.
    """
    n = cell.n
    expected_degree = float(cell.expected_degree)
    p = expected_degree / (n - 1)
    arrays = gen.fast_gnp_edges(n, p, seed=cell.gen_seed, as_arrays=True)
    network = Network.from_endpoint_arrays(n, arrays.src, arrays.dst)
    faults = cell.make_faults(n)

    best_seed_s = best_new_s = None
    seed_traces = new_traces = None
    for _ in range(reps):
        runner = Runner(max_rounds=MAX_ROUNDS)
        t0 = time.perf_counter()
        seed_traces = [
            runner.run(
                cell.make_algorithm(),
                network,
                cell.problem,
                seed=trial_seed(0, i),
                faults=faults,
            )
            for i in range(cell.trials)
        ]
        seed_s = time.perf_counter() - t0
        engine = ArrayEngine(max_rounds=MAX_ROUNDS)
        t0 = time.perf_counter()
        new_traces = [
            engine.run(
                cell.make_algorithm().as_array_algorithm(),
                network,
                cell.problem,
                seed=trial_seed(0, i),
                faults=faults,
            )
            for i in range(cell.trials)
        ]
        new_s = time.perf_counter() - t0
        if best_seed_s is None or seed_s < best_seed_s:
            best_seed_s = seed_s
        if best_new_s is None or new_s < best_new_s:
            best_new_s = new_s

    self_stabilizing = bool(getattr(cell.make_algorithm(), "self_stabilizing", False))
    for trace in (*seed_traces, *new_traces):
        trace.require_valid()  # surviving-subgraph verdict
        assert cell.problem.validate_induced(
            network,
            trace._node_value_slots(),
            trace._edge_value_slots(),
            trace.crashed,
        ), f"induced-survivor validity on {cell}"
        if self_stabilizing:
            timeline = trace.recovery
            assert timeline is not None, f"missing recovery timeline on {cell}"
            assert all(
                t is not None for t in timeline.time_to_restabilize()
            ), f"unrecovered crash epoch on {cell}"
    for a, b in zip(seed_traces, new_traces):
        common = min(a.rounds, b.rounds)
        assert tuple(e for e in a.fault_events if e[1] <= common) == tuple(
            e for e in b.fault_events if e[1] <= common
        ), f"fault-event mismatch on {cell}"

    return {
        "algorithm": cell.algorithm,
        "workload": cell.workload,
        "kind": cell.kind,
        "n": n,
        "m": network.m,
        "p": p,
        "trials": cell.trials,
        "crashes": len(faults.crashes),
        "crash_rounds": sorted(set(faults.crashes.values())),
        "rounds": [t.rounds for t in new_traces],
        "seed_rounds": [t.rounds for t in seed_traces],
        "total_messages": [t.total_messages for t in new_traces],
        "seed_total_messages": [t.total_messages for t in seed_traces],
        "seed": {"runner_s": round(best_seed_s, 6), "total_s": round(best_seed_s, 6)},
        "new": {"runner_s": round(best_new_s, 6), "total_s": round(best_new_s, 6)},
        "speedup": round(best_seed_s / best_new_s, 3),
        "faulted_speedup": round(best_seed_s / best_new_s, 3),
        "validated_outputs": True,
        "identical_fault_events": True,
        "survivor_valid": True,
        "measurement": measure(new_traces).as_dict(),
    }


def _run_generate_cell(cell: Cell, reps: int) -> Dict[str, object]:
    """A ``kind="generate"`` cell: the Erdős–Rényi generator race.

    Times the stream-exact O(n²) Gilbert twin (`erdos_renyi_edges`, the seed
    side) against the geometric-skip `fast_gnp_edges` for the same
    ``(n, p)``.  The two sample the same distribution through different
    documented seed schedules, so no edge-list identity exists to assert;
    instead both edge counts must land within a 6σ band of the expected
    ``n·(n−1)/2·p`` (the statistical equivalence tests live in
    ``tests/graphs/test_fast_gnp.py``).
    """
    n = cell.n
    expected_degree = float(cell.expected_degree)
    p = expected_degree / (n - 1)
    best_seed_s = best_new_s = None
    seed_edges = new_edges = None
    for _ in range(reps):
        t0 = time.perf_counter()
        _, seed_edges = gen.erdos_renyi_edges(n, expected_degree, seed=cell.gen_seed)
        seed_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        _, new_edges = gen.fast_gnp_edges(n, p, seed=cell.gen_seed)
        new_s = time.perf_counter() - t0
        if best_seed_s is None or seed_s < best_seed_s:
            best_seed_s = seed_s
        if best_new_s is None or new_s < best_new_s:
            best_new_s = new_s
    mu = n * (n - 1) / 2 * p
    slack = 6.0 * (mu**0.5)
    for label, edge_list in (("seed", seed_edges), ("new", new_edges)):
        assert abs(len(edge_list) - mu) <= slack, (
            f"{label} generator edge count {len(edge_list)} outside "
            f"{mu:.0f} ± {slack:.0f} on {cell}"
        )

    return {
        "algorithm": cell.algorithm,
        "workload": cell.workload,
        "kind": cell.kind,
        "n": n,
        "m": len(new_edges),
        "p": p,
        "expected_m": round(mu, 1),
        "seed_m": len(seed_edges),
        "new_m": len(new_edges),
        "within_6_sigma": True,
        "seed": {"generate_s": round(best_seed_s, 6), "total_s": round(best_seed_s, 6)},
        "new": {"generate_s": round(best_new_s, 6), "total_s": round(best_new_s, 6)},
        "speedup": round(best_seed_s / best_new_s, 3),
        "generate_speedup": round(best_seed_s / best_new_s, 3),
    }


def _run_cell_isolated(cell: Cell, reps: int, validate: bool) -> Dict[str, object]:
    """Run one cell in a forked child process (pyperf-style isolation).

    Cells run back-to-back in one interpreter contaminate each other's
    timings: the 10⁶-node coroutine cell leaves pymalloc arenas fragmented
    and the GC's gen-2 set enlarged, and the cells that follow it measured
    1.5–2.6× slower than the same cells in a fresh process — unevenly, so
    even the *ratios* drifted.  Forking per cell keeps the parent's warmed
    imports but gives every cell a private heap, so in-suite timings match
    fresh-process runs.  Falls back to in-process execution where ``fork``
    is unavailable.
    """
    if not hasattr(os, "fork"):
        return run_cell(cell, reps=reps, validate=validate)
    rx, tx = os.pipe()
    pid = os.fork()
    if pid == 0:
        try:
            os.close(rx)
            record = run_cell(cell, reps=reps, validate=validate)
            with os.fdopen(tx, "wb") as sink:
                pickle.dump(record, sink, protocol=4)
        except BaseException:
            import traceback

            traceback.print_exc()
            os._exit(1)
        finally:
            os._exit(0)
    os.close(tx)
    # Drain the pipe before waitpid: a record larger than the pipe buffer
    # would otherwise deadlock (child blocked writing, parent in waitpid).
    with os.fdopen(rx, "rb") as source:
        try:
            record = pickle.load(source)
        except Exception:
            record = None
    _, wait_status = os.waitpid(pid, 0)
    if record is None or wait_status != 0:
        raise RuntimeError(
            f"isolated bench cell failed (wait status {wait_status}): {cell}"
        )
    return record


def run_suite(quick: bool = False, reps: int = 3, validate: bool = True) -> Dict[str, object]:
    """Run every cell and return the full BENCH_core document.

    Each cell runs in its own forked child (:func:`_run_cell_isolated`) so
    successive cells cannot skew each other's timings through allocator or
    GC state.
    """
    records = []
    for cell in _cells(quick):
        record = _run_cell_isolated(cell, reps, validate)
        records.append(record)
        if record["kind"] == "validate":
            detail = f"(validate ×{record['validate_speedup']:.2f})"
        elif record["kind"] == "measure":
            detail = f"(measure ×{record['measure_speedup']:.2f})"
        elif record["kind"] == "generate":
            detail = f"(generate ×{record['generate_speedup']:.2f}, m={record['new_m']})"
        elif record["kind"] == "build":
            detail = f"(build ×{record['build_speedup']:.2f}, m={record['m']})"
        elif record["kind"] == "run":
            detail = f"(engine ×{record['run_speedup']:.2f}, m={record['m']})"
        elif record["kind"] == "batched_run":
            detail = (
                f"(batched ×{record['batched_speedup']:.2f}, "
                f"T={record['trials']}, chunk={record['chunk']})"
            )
        elif record["kind"] == "faulted_run":
            detail = (
                f"(faulted ×{record['faulted_speedup']:.2f}, "
                f"crashes={record['crashes']})"
            )
        else:
            detail = f"(runner ×{record['runner_speedup']:.2f})"
        print(
            f"{record['algorithm']:>22} × {record['workload']:<22} n={record['n']:>6}  "
            f"seed {record['seed']['total_s'] * 1000:8.1f} ms  "
            f"new {record['new']['total_s'] * 1000:8.1f} ms  "
            f"speedup ×{record['speedup']:.2f} {detail}",
            flush=True,
        )
    return {
        "schema": SCHEMA,
        "quick": quick,
        "reps": reps,
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
        },
        "notes": (
            "Per-cell wall times are best-of-reps. 'seed' is the vendored seed "
            "implementation; 'new' is the array-backed core. pipeline/validate "
            "cells consume identical inputs and assert bitwise trace identity "
            "plus measurement agreement to 1e-12 relative; measure cells race "
            "the seed per-entity measurement loops against the numpy reductions "
            "on identical traces; generate cells race the O(n^2) Gilbert twin "
            "against the geometric-skip fast_gnp_edges (different documented "
            "seed schedules, edge counts asserted within 6 sigma of n(n-1)/2*p); "
            "build cells race the tuple-row Network.from_edges build against "
            "the numpy CSR Network.from_endpoint_arrays build on one shared "
            "workload, asserting the two networks are indistinguishable; "
            "run cells race the per-node coroutine Runner against the "
            "vectorised ArrayEngine on one shared network (different "
            "documented seed schedules -> no trace identity; every trace on "
            "both sides is validator-verified, distributional equivalence is "
            "pinned by tests/local/test_engine.py); faulted_run cells repeat "
            "the engine race under a deterministic crash-wave FaultSchedule "
            "with the self-stabilising Luby MIS, asserting "
            "surviving+induced-survivor validity, literal fault-event "
            "agreement over common round prefixes, and full recovery of "
            "every crash epoch on both sides; batched_run cells race the "
            "single-trial ArrayEngine loop against ArrayEngine.run_batch "
            "stepping all T trials together over (T, n)/(T, m) state arrays "
            "(chunked by the batch_chunk byte budget) — per-trial "
            "PCG64(trial_seed(0, t)) streams make the two sides bit-identical, "
            "and that identity is asserted trace-for-trace before timing. "
            "Every cell runs in a forked child process (warmed imports, "
            "private heap), so cells cannot contaminate each other's "
            "timings through allocator fragmentation or GC-generation "
            "growth."
        ),
        "cells": records,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="tiny smoke-test sizes")
    parser.add_argument("--reps", type=int, default=3, help="repetitions per cell (best is kept)")
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUTPUT)
    parser.add_argument("--no-validate", action="store_true", help="skip solution validation")
    args = parser.parse_args(argv)

    document = run_suite(quick=args.quick, reps=args.reps, validate=not args.no_validate)
    args.out.write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
