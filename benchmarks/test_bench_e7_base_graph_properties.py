"""E7 — Lemma 13 / Corollary 15: properties of the base graphs G_k.

Regenerates the quantitative facts Lemma 13 states about the base graph: the
cluster sizes ``2 β^{k+1} (β/2)^{k+1-d}``, the maximum degree bound
``2 β^{k+1}``, the total node count ``O(β^{2k+2})``, and the per-cluster
independence-number bound ``|S(v)| / β^{ψ(v)}``.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.lowerbound.analysis import cluster_reports, max_covered_fraction_of_s0
from repro.lowerbound.base_graph import build_base_graph

from _bench_utils import emit

PARAMETERS = [(0, 4), (0, 8), (1, 4), (1, 6)]


def run_e7():
    rows = []
    for k, beta in PARAMETERS:
        gk = build_base_graph(k, beta)
        gk.validate_degrees()
        reports = cluster_reports(gk, attempts=2)
        max_degree = max(dict(gk.graph.degree()).values())
        violations = sum(
            1
            for report in reports
            if report.independence_upper_bound is not None
            and report.greedy_independent_set > report.independence_upper_bound
        )
        rows.append(
            {
                "k": k,
                "beta": beta,
                "n": gk.n,
                "m": gk.graph.number_of_edges(),
                "max_degree": max_degree,
                "degree_bound": gk.max_degree_bound(),
                "n_bound": 8 * beta ** (2 * k + 2),
                "s0_size": len(gk.special_cluster(0)),
                "alpha_violations": violations,
                "covered_fraction_bound": round(max_covered_fraction_of_s0(gk), 3),
            }
        )
    return rows


def test_e7_base_graph_matches_lemma13(run_experiment):
    rows = run_experiment(run_e7)
    emit(
        format_table(
            rows,
            columns=[
                "k",
                "beta",
                "n",
                "m",
                "max_degree",
                "degree_bound",
                "n_bound",
                "s0_size",
                "alpha_violations",
                "covered_fraction_bound",
            ],
            title="E7: base graph G_k structural properties (Lemma 13)",
        )
    )
    for row in rows:
        # Degree bound of Lemma 13.
        assert row["max_degree"] <= row["degree_bound"]
        # Total size O(β^{2k+2}).
        assert row["n"] <= row["n_bound"]
        # Independence bounds hold in every cluster.
        assert row["alpha_violations"] == 0
        # S(c0) is the dominant cluster.
        assert row["s0_size"] >= row["n"] / 4
