"""Smoke test for the core perf harness (``pytest -m bench_smoke``).

Runs the ``--quick`` benchmark configuration once so that the harness itself
— the vendored seed pipeline, the cell runner, and the JSON document
builder — cannot silently rot.  The quick cells are tiny (n ≈ 100–150), so
this stays well inside the tier-1 time budget; the speedup *values* are not
asserted (meaningless at smoke sizes), only the invariants the harness is
built on: both pipelines produce identical traces and byte-identical
complexity measurements, and the document has the ``bench-core/v1`` shape.
"""

from __future__ import annotations

import json

import pytest

import core_perf


@pytest.mark.bench_smoke
def test_quick_suite_produces_identical_pipelines(tmp_path):
    document = core_perf.run_suite(quick=True, reps=1)

    assert document["schema"] == core_perf.SCHEMA
    cells = document["cells"]
    assert len(cells) >= 3
    algorithms = {cell["algorithm"] for cell in cells}
    assert {"luby-mis", "randomized-matching", "sinkless-orientation"} <= algorithms

    for cell in cells:
        # run_cell asserts trace/measurement equality internally; the flag
        # records it in the committed document.
        assert cell["identical_traces"] is True
        assert cell["seed"]["total_s"] > 0 and cell["new"]["total_s"] > 0
        assert cell["speedup"] > 0
        assert len(cell["rounds"]) == cell["trials"]
        assert cell["measurement"]["n"] == cell["n"]
        assert cell["kind"] in ("pipeline", "validate")

    # The quick suite must exercise the CSR-native validation cell kind (fed
    # by a direct edge-list workload), so the large-n validation path of the
    # full suite cannot silently rot.
    validate_cells = [cell for cell in cells if cell["kind"] == "validate"]
    assert validate_cells, "quick suite lost its validation-only cell"
    for cell in validate_cells:
        assert cell["validations"] >= 1
        assert cell["validate_speedup"] > 0
        assert cell["seed"]["validate_s"] > 0 and cell["new"]["validate_s"] > 0

    # The document must be JSON-serialisable exactly as core_perf writes it.
    path = tmp_path / "BENCH_core.json"
    path.write_text(json.dumps(document, indent=2))
    assert json.loads(path.read_text())["cells"]
