"""Smoke test for the core perf harness (``pytest -m bench_smoke``).

Runs the ``--quick`` benchmark configuration once so that the harness itself
— the vendored seed pipeline, the cell runner, and the JSON document
builder — cannot silently rot.  The quick cells are tiny (n ≈ 100–2000), so
this stays well inside the tier-1 time budget; the speedup *values* are not
asserted (meaningless at smoke sizes), only the invariants the harness is
built on: both pipelines produce identical traces and measurements agreeing
to ≤ 1e-12 relative, the v3 measure/generate, v4 build, v5 run, v6
faulted_run and v7 batched_run cell kinds run, and the document has the
``bench-core/v7`` shape.  A second test pins the
:class:`repro.core.experiment.Experiment` facade against the harness's
hand-rolled plumbing: same seeds, bit-identical traces and measurement.
A third runs a two-worker shared-memory sweep end to end and checks it
against the serial result, so the parallel path stays covered by
``make bench-smoke``.
"""

from __future__ import annotations

import json

import pytest

import core_perf


@pytest.mark.bench_smoke
def test_quick_suite_produces_identical_pipelines(tmp_path):
    document = core_perf.run_suite(quick=True, reps=1)

    assert document["schema"] == core_perf.SCHEMA
    cells = document["cells"]
    assert len(cells) >= 3
    algorithms = {cell["algorithm"] for cell in cells}
    assert {"luby-mis", "randomized-matching", "sinkless-orientation"} <= algorithms

    for cell in cells:
        assert cell["kind"] in (
            "pipeline",
            "validate",
            "measure",
            "generate",
            "build",
            "run",
            "batched_run",
            "faulted_run",
        )
        assert cell["seed"]["total_s"] > 0 and cell["new"]["total_s"] > 0
        assert cell["speedup"] > 0
        if cell["kind"] in ("pipeline", "validate"):
            # run_cell asserts trace/measurement equality internally; the
            # flag records it in the committed document.
            assert cell["identical_traces"] is True
        if cell["kind"] not in ("generate", "build"):
            assert len(cell["rounds"]) == cell["trials"]
            assert cell["measurement"]["n"] == cell["n"]

    # The quick suite must exercise the CSR-native validation cell kind (fed
    # by a direct edge-list workload), so the large-n validation path of the
    # full suite cannot silently rot.
    validate_cells = [cell for cell in cells if cell["kind"] == "validate"]
    assert validate_cells, "quick suite lost its validation-only cell"
    for cell in validate_cells:
        assert cell["validations"] >= 1
        assert cell["validate_speedup"] > 0
        assert cell["seed"]["validate_s"] > 0 and cell["new"]["validate_s"] > 0

    # ... and the v3 cell kinds: the numpy-vs-seed measurement race and the
    # generator race, so the million-node measurement layer cannot rot.
    measure_cells = [cell for cell in cells if cell["kind"] == "measure"]
    assert measure_cells, "quick suite lost its measurement-only cell"
    for cell in measure_cells:
        assert cell["measure_speedup"] > 0
        assert cell["measurement_agreement_rtol"] <= 1e-12
        assert cell["seed"]["measure_s"] > 0 and cell["new"]["measure_s"] > 0

    generate_cells = [cell for cell in cells if cell["kind"] == "generate"]
    assert generate_cells, "quick suite lost its generator-race cell"
    for cell in generate_cells:
        assert cell["generate_speedup"] > 0
        assert cell["within_6_sigma"] is True
        assert cell["seed_m"] > 0 and cell["new_m"] > 0
        assert cell["m"] == cell["new_m"]

    # ... and the v4 cell kind: the tuple-row vs numpy-CSR Network build
    # race (indistinguishability of the two networks is asserted inside
    # _run_build_cell; the flag records it in the committed document).
    build_cells = [cell for cell in cells if cell["kind"] == "build"]
    assert build_cells, "quick suite lost its network-build cell"
    for cell in build_cells:
        assert cell["build_speedup"] > 0
        assert cell["identical_networks"] is True
        assert cell["m"] > 0
        assert cell["seed"]["network_s"] > 0 and cell["new"]["network_s"] > 0

    # ... and the v5 cell kind: the coroutine-runner vs array-engine race,
    # with validator-verified outputs on both sides (asserted inside
    # _run_engine_cell; the flag records it in the committed document).
    run_cells = [cell for cell in cells if cell["kind"] == "run"]
    assert run_cells, "quick suite lost its engine-race cell"
    assert {cell["algorithm"] for cell in run_cells} >= {
        "luby-mis",
        "randomized-matching",
    }
    for cell in run_cells:
        assert cell["run_speedup"] > 0
        assert cell["validated_outputs"] is True
        assert len(cell["seed_rounds"]) == cell["trials"]
        assert cell["seed"]["runner_s"] > 0 and cell["new"]["runner_s"] > 0

    # ... and the v7 cell kind: the trial-batching race inside the array
    # engine.  Bit-identical batched-vs-single traces (batch-size
    # invariance) are asserted inside _run_batched_cell; the flag records
    # it in the committed document.
    batched_cells = [cell for cell in cells if cell["kind"] == "batched_run"]
    assert batched_cells, "quick suite lost its trial-batching cell"
    assert {cell["algorithm"] for cell in batched_cells} >= {
        "luby-mis",
        "randomized-matching",
    }
    for cell in batched_cells:
        assert cell["batched_speedup"] > 0
        assert cell["identical_traces"] is True
        assert cell["validated_outputs"] is True
        assert cell["trials"] > 1
        assert 1 <= cell["chunk"] <= cell["trials"]
        assert len(cell["rounds"]) == cell["trials"]
        assert cell["seed"]["runner_s"] > 0 and cell["new"]["runner_s"] > 0

    # ... and the v6 cell kind: the fault-injected engine race on the
    # self-stabilising Luby MIS (surviving + induced-survivor validity,
    # fault-event agreement and full epoch recovery are asserted inside
    # _run_faulted_cell; the flags record them in the committed document).
    faulted_cells = [cell for cell in cells if cell["kind"] == "faulted_run"]
    assert faulted_cells, "quick suite lost its fault-injection cell"
    for cell in faulted_cells:
        assert cell["faulted_speedup"] > 0
        assert cell["validated_outputs"] is True
        assert cell["identical_fault_events"] is True
        assert cell["survivor_valid"] is True
        assert cell["crashes"] > 0 and cell["crash_rounds"]
        assert len(cell["seed_rounds"]) == cell["trials"]
        # measure() flattens epochs over the cell's trials.
        assert cell["measurement"]["recovery_epochs"] == cell["trials"] * len(
            cell["crash_rounds"]
        )
        assert cell["measurement"]["unrecovered_epochs"] == 0

    # The document must be JSON-serialisable exactly as core_perf writes it.
    path = tmp_path / "BENCH_core.json"
    path.write_text(json.dumps(document, indent=2))
    assert json.loads(path.read_text())["cells"]


@pytest.mark.bench_smoke
def test_experiment_facade_matches_harness_plumbing():
    """The Experiment facade reproduces the harness's hand-rolled pipeline.

    Same workload, same identifiers, same per-trial seed schedule — the
    facade must hand back bit-identical traces and an equal measurement, so
    benchmark code can adopt it without changing any recorded number.
    """
    from repro.algorithms.mis.luby import LubyMIS
    from repro.core import problems
    from repro.core.experiment import Experiment, trial_seed
    from repro.core.metrics import measure
    from repro.graphs import generators as gen
    from repro.local.network import Network
    from repro.local.runner import Runner

    arrays = gen.fast_gnp_edges(400, 8.0 / 399, seed=11, as_arrays=True)
    trials = 2

    # The harness's plumbing: explicit network, runner, per-trial seeds.
    network = Network.from_edge_arrays(arrays, id_scheme="sequential")
    runner = Runner(max_rounds=core_perf.MAX_ROUNDS)
    traces = [
        runner.run(LubyMIS(), network, problems.MIS, seed=trial_seed(0, i))
        for i in range(trials)
    ]
    expected = measure(traces)

    result = Experiment(
        problem=problems.MIS,
        algorithm=LubyMIS,
        graphs=arrays,
        trials=trials,
        id_scheme="sequential",
        max_rounds=core_perf.MAX_ROUNDS,
        quantiles=None,
    ).run()

    run = result.run
    assert run.ok
    assert run.measurement == expected
    assert [t.node_outputs for t in run.traces] == [t.node_outputs for t in traces]
    assert [t.node_commit_round for t in run.traces] == [
        t.node_commit_round for t in traces
    ]
    assert [t.rounds for t in run.traces] == [t.rounds for t in traces]


@pytest.mark.bench_smoke
def test_two_worker_shared_memory_sweep_matches_serial():
    """A 2-worker sweep over shared-CSR segments equals the serial sweep.

    The workers attach the parent's shared-memory CSR export instead of
    rebuilding networks, and the parent must unlink every segment on the
    way out — both contracts smoke-checked here so CI exercises the
    multi-core path on every run.
    """
    import sys as _sys

    from multiprocessing import shared_memory

    from repro.algorithms.mis.luby import LubyMIS
    from repro.core import problems
    from repro.graphs import generators as gen

    import repro.analysis.sweep  # noqa: F401

    sweepmod = _sys.modules["repro.analysis.sweep"]

    settings = dict(
        parameter="n",
        values=[16, 24],
        graph_factory=gen.cycle_edges,
        algorithms={"luby": (lambda net: LubyMIS(), lambda net: problems.MIS)},
        trials=3,
        seed=5,
        engine="auto",
    )
    serial = sweepmod.sweep(**settings)
    parallel = sweepmod.sweep(parallel=2, **settings)
    assert parallel == serial
    for name in sweepmod._LAST_SEGMENT_NAMES:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
