"""The seed (pre-CSR) Network, vendored for before/after benchmarks.

This is the network construction path as it existed before the array-backed
core rewrite: every constructor goes through a networkx graph, adjacency is
rebuilt with per-vertex ``sorted(set(...))``, and degree statistics are
recomputed on every call.  The perf harness (:mod:`core_perf`) times it
against the CSR-backed :class:`repro.local.network.Network` on identical
inputs.  Do not optimise this file — it is a faithful snapshot of the seed.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import networkx as nx

from repro.local import ids as ids_module

__all__ = ["LegacyNetwork", "canonical_edge"]


def canonical_edge(u: int, v: int) -> Tuple[int, int]:
    """Return the canonical (sorted) representation of the undirected edge ``{u, v}``."""
    if u == v:
        raise ValueError(f"self-loops are not supported in the LOCAL simulator: ({u}, {v})")
    return (u, v) if u < v else (v, u)


class LegacyNetwork:
    """Immutable communication graph with identifiers.

    Args:
        graph: an undirected :class:`networkx.Graph` whose nodes are hashable.
            Nodes are relabelled to ``0..n-1`` internally (in sorted order of
            the original labels when possible, insertion order otherwise).
        identifiers: optional mapping from *internal vertex index* to unique
            identifier.  When omitted, sequential identifiers are used.

    Attributes:
        n: number of vertices.
        m: number of edges.
    """

    def __init__(
        self,
        graph: nx.Graph,
        identifiers: Optional[Mapping[int, int]] = None,
    ) -> None:
        if graph.is_directed():
            raise ValueError("Network requires an undirected graph")
        if any(u == v for u, v in graph.edges()):
            raise ValueError("Network does not support self-loops")

        original_nodes = list(graph.nodes())
        try:
            original_nodes = sorted(original_nodes)
        except TypeError:
            pass
        self._original_labels: List = original_nodes
        self._index_of = {label: i for i, label in enumerate(original_nodes)}

        self.n: int = len(original_nodes)
        self._adjacency: List[Tuple[int, ...]] = [() for _ in range(self.n)]
        neighbor_sets: List[List[int]] = [[] for _ in range(self.n)]
        edges: List[Tuple[int, int]] = []
        for u_label, v_label in graph.edges():
            u, v = self._index_of[u_label], self._index_of[v_label]
            neighbor_sets[u].append(v)
            neighbor_sets[v].append(u)
            edges.append(canonical_edge(u, v))
        for v in range(self.n):
            self._adjacency[v] = tuple(sorted(set(neighbor_sets[v])))
        # Deduplicate parallel edges (networkx Graph already does, but be safe).
        edges = sorted(set(edges))
        self._edges: Tuple[Tuple[int, int], ...] = tuple(edges)
        self._edge_index: Dict[Tuple[int, int], int] = {e: i for i, e in enumerate(self._edges)}
        self.m: int = len(self._edges)

        if identifiers is None:
            identifiers = ids_module.sequential_ids(list(range(self.n)))
        ids_module.validate_ids(dict(identifiers), range(self.n))
        self._ids: Tuple[int, ...] = tuple(identifiers[v] for v in range(self.n))

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_graph(
        cls,
        graph: nx.Graph,
        id_scheme: str = "sequential",
        rng: Optional[random.Random] = None,
    ) -> "LegacyNetwork":
        """Build a network from a networkx graph with a named ID scheme.

        Args:
            graph: the topology.
            id_scheme: one of ``"sequential"``, ``"random"``, ``"permuted"``,
                ``"adversarial"``.
            rng: randomness source, required for the randomized schemes.
        """
        n = graph.number_of_nodes()
        vertices = list(range(n))
        if id_scheme == "sequential":
            identifiers = ids_module.sequential_ids(vertices)
        elif id_scheme == "random":
            identifiers = ids_module.random_ids(vertices, rng or random.Random(0))
        elif id_scheme == "permuted":
            identifiers = ids_module.permuted_ids(vertices, rng or random.Random(0))
        elif id_scheme == "adversarial":
            identifiers = ids_module.adversarial_interval_ids(vertices)
        else:
            raise ValueError(f"unknown id scheme: {id_scheme!r}")
        return cls(graph, identifiers)

    @classmethod
    def from_edges(
        cls,
        n: int,
        edges: Iterable[Tuple[int, int]],
        identifiers: Optional[Mapping[int, int]] = None,
    ) -> "LegacyNetwork":
        """Build a network on vertices ``0..n-1`` from an edge list."""
        g = nx.Graph()
        g.add_nodes_from(range(n))
        g.add_edges_from(edges)
        if g.number_of_nodes() != n:
            raise ValueError("edge list refers to vertices outside 0..n-1")
        return cls(g, identifiers)

    # ------------------------------------------------------------------ #
    # Topology accessors
    # ------------------------------------------------------------------ #

    def neighbors(self, v: int) -> Tuple[int, ...]:
        """Neighbours of vertex ``v`` (sorted tuple of vertex indices)."""
        return self._adjacency[v]

    def degree(self, v: int) -> int:
        """Degree of vertex ``v``."""
        return len(self._adjacency[v])

    def max_degree(self) -> int:
        """Maximum degree Δ of the network (0 for the empty graph)."""
        if self.n == 0:
            return 0
        return max(len(adj) for adj in self._adjacency)

    def min_degree(self) -> int:
        """Minimum degree of the network (0 for the empty graph)."""
        if self.n == 0:
            return 0
        return min(len(adj) for adj in self._adjacency)

    @property
    def vertices(self) -> range:
        """All vertex indices."""
        return range(self.n)

    @property
    def edges(self) -> Tuple[Tuple[int, int], ...]:
        """All edges as canonical ``(u, v)`` tuples with ``u < v``."""
        return self._edges

    def edge_index(self, u: int, v: int) -> int:
        """Dense index of the edge ``{u, v}``; raises ``KeyError`` if absent."""
        return self._edge_index[canonical_edge(u, v)]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an edge of the network."""
        if u == v:
            return False
        return canonical_edge(u, v) in self._edge_index

    def incident_edges(self, v: int) -> List[Tuple[int, int]]:
        """Canonical edges incident to vertex ``v``."""
        return [canonical_edge(v, u) for u in self._adjacency[v]]

    # ------------------------------------------------------------------ #
    # Identifiers
    # ------------------------------------------------------------------ #

    def identifier(self, v: int) -> int:
        """Unique identifier of vertex ``v``."""
        return self._ids[v]

    @property
    def identifiers(self) -> Tuple[int, ...]:
        """Identifiers indexed by vertex."""
        return self._ids

    def with_identifiers(self, identifiers: Mapping[int, int]) -> "LegacyNetwork":
        """Return a copy of this network with different identifiers."""
        return LegacyNetwork(self.to_networkx(), identifiers)

    def id_bit_length(self) -> int:
        """Bits needed for the largest identifier."""
        return max((int(i).bit_length() for i in self._ids), default=0)

    # ------------------------------------------------------------------ #
    # Conversions & misc
    # ------------------------------------------------------------------ #

    def to_networkx(self) -> nx.Graph:
        """Export the topology (on vertices ``0..n-1``) as a networkx graph."""
        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        g.add_edges_from(self._edges)
        return g

    def original_label(self, v: int) -> object:
        """The label the vertex had in the graph the network was built from."""
        return self._original_labels[v]

    def subnetwork(self, vertices: Sequence[int]) -> "LegacyNetwork":
        """Induced sub-network on ``vertices`` (re-indexed to ``0..k-1``).

        Identifiers are preserved, which keeps the sub-network a legitimate
        LOCAL-model input.
        """
        vertex_list = sorted(set(vertices))
        index = {v: i for i, v in enumerate(vertex_list)}
        g = nx.Graph()
        g.add_nodes_from(range(len(vertex_list)))
        for u, v in self._edges:
            if u in index and v in index:
                g.add_edge(index[u], index[v])
        identifiers = {index[v]: self._ids[v] for v in vertex_list}
        return LegacyNetwork(g, identifiers)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Network(n={self.n}, m={self.m}, max_degree={self.max_degree()})"
