"""E10 — Theorem 17: maximal matching on the two-copy lower-bound construction.

On the two-copy KMW construction almost all nodes lie in the two copies of
``S(c0)`` and any maximal matching must contain almost all of the cross
perfect-matching edges joining them.  The measurable shape: the node-averaged
complexity of maximal matching on this instance is dominated by the S(c0)
twins (they decide late), and clearly exceeds the edge-averaged complexity of
the same algorithm on an ordinary graph of comparable size (Theorem 4's O(1)).
"""

from __future__ import annotations

from statistics import mean

import networkx as nx

from repro.algorithms.matching import RandomizedMaximalMatching
from repro.analysis import format_table, network_from
from repro.core import problems
from repro.core.experiment import run_trials
from repro.core.metrics import measure
from repro.local.runner import Runner
from repro.lowerbound.matching_construction import build_matching_lower_bound_graph

from _bench_utils import emit


def run_e10():
    runner = Runner(max_rounds=50_000)
    rows = []

    # k = 0, β = 12: the two copies of S(c1) hold only a third of |S(c0)|,
    # so at least two thirds of the S(c0) twin pairs must use their cross edge.
    instance = build_matching_lower_bound_graph(0, 12)
    network = network_from(instance.graph, seed=5)
    s0_nodes = set(instance.s0_copy_a) | set(instance.s0_copy_b)
    cross_s0 = set(instance.cross_matching_between_s0())

    traces = run_trials(
        RandomizedMaximalMatching, network, problems.MAXIMAL_MATCHING,
        trials=2, seed=3, runner=runner,
    )
    measurement = measure(traces)
    s0_average = mean(
        mean(trace.node_completion_time(v) for v in s0_nodes) for trace in traces
    )
    cross_used = mean(
        sum(1 for e in trace.selected_edges() if e in cross_s0) for trace in traces
    )
    rows.append(
        {
            "instance": "two-copy G_0 (Theorem 17)",
            "n": network.n,
            "s0_fraction": round(instance.s0_fraction(), 3),
            "node_averaged": round(measurement.node_averaged, 3),
            "s0_node_averaged": round(s0_average, 3),
            "edge_averaged": round(measurement.edge_averaged, 3),
            "cross_s0_edges_used": round(cross_used, 1),
            "cross_s0_edges_total": len(cross_s0),
        }
    )

    # Ordinary-graph baseline of comparable size for the edge-averaged O(1).
    baseline_graph = nx.random_regular_graph(6, network.n, seed=9)
    baseline_network = network_from(baseline_graph, seed=6)
    baseline_traces = run_trials(
        RandomizedMaximalMatching, baseline_network, problems.MAXIMAL_MATCHING,
        trials=2, seed=3, runner=runner,
    )
    baseline = measure(baseline_traces)
    rows.append(
        {
            "instance": "6-regular baseline",
            "n": baseline_network.n,
            "s0_fraction": 0.0,
            "node_averaged": round(baseline.node_averaged, 3),
            "s0_node_averaged": float("nan"),
            "edge_averaged": round(baseline.edge_averaged, 3),
            "cross_s0_edges_used": float("nan"),
            "cross_s0_edges_total": 0,
        }
    )
    return rows


def test_e10_matching_lower_bound_shape(run_experiment):
    rows = run_experiment(run_e10)
    emit(
        format_table(
            rows,
            columns=[
                "instance",
                "n",
                "s0_fraction",
                "node_averaged",
                "s0_node_averaged",
                "edge_averaged",
                "cross_s0_edges_used",
                "cross_s0_edges_total",
            ],
            title="E10: maximal matching on the two-copy construction (Theorem 17)",
        )
    )
    lower_bound_row = rows[0]
    baseline_row = rows[1]
    # The two S(c0) copies dominate the instance.
    assert lower_bound_row["s0_fraction"] > 0.4
    # Maximal matchings use most of the S(c0) cross edges (the structural fact
    # the lower-bound argument exploits).
    assert lower_bound_row["cross_s0_edges_used"] >= 0.5 * lower_bound_row["cross_s0_edges_total"]
    # The S(c0) twins carry at least the average cost.
    assert lower_bound_row["s0_node_averaged"] >= 0.8 * lower_bound_row["node_averaged"]
    # Edge-averaged complexity stays small on both instances (Theorem 4).
    assert lower_bound_row["edge_averaged"] <= 30.0
    assert baseline_row["edge_averaged"] <= 30.0
