"""E6 — Figure 1 / Observations 7–10: structure of the cluster tree skeletons CT_k.

Regenerates the structural table behind Figure 1: for k = 0..3, the number of
skeleton nodes, internal nodes and leaves, the number of directed labelled
edges, and the maximum depth — plus a check of the out-label multiplicities
of Observation 9 (every internal node has 2·β^i outgoing edges for every
i ≤ k; every leaf for exactly one exponent).
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.lowerbound.cluster_tree import ClusterTreeSkeleton

from _bench_utils import emit

KS = [0, 1, 2, 3, 4]


def run_e6():
    rows = []
    for k in KS:
        skeleton = ClusterTreeSkeleton(k)
        skeleton.validate()
        summary = skeleton.summary()
        internal_label_sets = {
            tuple(sorted(skeleton.out_label_counts(v).items()))
            for v in skeleton.internal_nodes()
        }
        leaf_label_sets = {
            tuple(sorted(skeleton.out_label_counts(v).items())) for v in skeleton.leaves()
        }
        summary["internal_label_patterns"] = len(internal_label_sets)
        summary["leaf_label_patterns"] = len(leaf_label_sets)
        rows.append(summary)
    return rows


def test_e6_cluster_tree_structure(run_experiment):
    rows = run_experiment(run_e6)
    emit(
        format_table(
            rows,
            columns=[
                "k",
                "nodes",
                "internal",
                "leaves",
                "directed_edges",
                "max_depth",
                "internal_label_patterns",
                "leaf_label_patterns",
            ],
            title="E6: cluster tree skeletons CT_k (Figure 1)",
        )
    )
    by_k = {row["k"]: row for row in rows}
    # Figure 1 sizes: CT_0 has 2 nodes, CT_1 has 4, CT_2 has 10.
    assert by_k[0]["nodes"] == 2
    assert by_k[1]["nodes"] == 4
    assert by_k[2]["nodes"] == 10
    # Observation 9: all internal nodes share one outgoing-label pattern,
    # leaves use exactly (k+1) distinct single-exponent patterns for k >= 1.
    for k in KS:
        assert by_k[k]["internal_label_patterns"] == 1
        assert by_k[k]["leaf_label_patterns"] <= k + 2
    # The skeleton grows monotonically with k.
    sizes = [by_k[k]["nodes"] for k in KS]
    assert sizes == sorted(sizes)
