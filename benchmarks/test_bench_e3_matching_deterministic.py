"""E3 — Theorem 5: deterministic maximal matching averaged complexities vs Δ.

Theorem 5 gives a deterministic algorithm with edge-averaged complexity
O(log² Δ + log* n), node-averaged O(log³ Δ + log* n) and worst case
O(log² Δ · log n).  The sweep grows Δ and reports the three measures for our
deterministic matching (AKO rounding substituted by local-maximum selection,
see DESIGN.md); the expected shape is edge-averaged ≤ node-averaged ≤ worst
case with slow growth in Δ.
"""

from __future__ import annotations

import networkx as nx

from repro.algorithms.matching import DeterministicMaximalMatching
from repro.analysis import format_sweep, sweep
from repro.core import problems

from _bench_utils import emit

DEGREES = [4, 8, 16, 32]
N = 400


def run_e3():
    return sweep(
        parameter="delta",
        values=DEGREES,
        graph_factory=lambda d: nx.random_regular_graph(d, N, seed=31),
        algorithms={
            "deterministic-matching": (
                lambda net: DeterministicMaximalMatching(),
                lambda net: problems.MAXIMAL_MATCHING,
            ),
        },
        trials=1,  # the algorithm is deterministic
        seed=3,
    )


def test_e3_deterministic_matching_measures_ordered(run_experiment):
    points = run_experiment(run_e3)
    emit(format_sweep(points, title="E3: deterministic maximal matching vs Δ (Theorem 5)"))

    for point in points:
        m = point.measurement
        assert m.edge_averaged <= m.node_averaged + 1e-9
        assert m.node_averaged <= m.worst_case + 1e-9
    # Growth in Δ is polylogarithmic, not linear: going from Δ=4 to Δ=32 the
    # measured ratio tracks log²Δ (≈ 6.25x), far below the linear ratio of 8x.
    edge_averages = [p.measurement.edge_averaged for p in points]
    assert edge_averages[-1] <= 8.0 * edge_averages[0] + 8.0
