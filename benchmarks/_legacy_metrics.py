"""The seed measurement path, vendored for before/after benchmarks.

Before the array-backed core rewrite, completion-time vectors were computed
by calling ``node_completion_time(v)`` / ``edge_completion_time(u, v)`` per
entity (one canonicalisation and several dict probes per call), and
``measure()`` recomputed the full vectors once per reported metric — three
times per trace for nodes and another three for edges.  These functions
reproduce that exact computation (cost and values) against today's
:class:`~repro.core.trace.ExecutionTrace` objects, so the perf harness can
time the seed measurement pipeline without checking out the seed commit.

Do not optimise this file — it is a faithful snapshot of the seed.
"""

from __future__ import annotations

from statistics import mean
from typing import List, Tuple

from repro.core.metrics import ComplexityMeasurement
from repro.core.trace import ExecutionTrace

__all__ = ["legacy_measure", "legacy_node_completion_times", "legacy_edge_completion_times"]

Edge = Tuple[int, int]


def _canon(u: int, v: int) -> Edge:
    return (u, v) if u < v else (v, u)


def _node_round(trace: ExecutionTrace, v: int) -> int:
    if v not in trace.node_commit_round:
        return trace.rounds
    return trace.node_commit_round[v]


def _edge_round(trace: ExecutionTrace, e: Edge) -> int:
    if e not in trace.edge_commit_round:
        return trace.rounds
    return trace.edge_commit_round[e]


def legacy_node_completion_time(trace: ExecutionTrace, v: int) -> int:
    times: List[int] = []
    if trace.problem.labels_nodes:
        times.append(_node_round(trace, v))
    if trace.problem.labels_edges:
        for u in trace.network.neighbors(v):
            times.append(_edge_round(trace, _canon(v, u)))
    if not times:
        return 0
    return max(times)


def legacy_edge_completion_time(trace: ExecutionTrace, u: int, v: int) -> int:
    e = _canon(u, v)
    times: List[int] = []
    if trace.problem.labels_edges:
        times.append(_edge_round(trace, e))
    if trace.problem.labels_nodes:
        times.append(_node_round(trace, u))
        times.append(_node_round(trace, v))
    if not times:
        return 0
    return max(times)


def legacy_node_completion_times(trace: ExecutionTrace) -> List[int]:
    return [legacy_node_completion_time(trace, v) for v in trace.network.vertices]


def legacy_edge_completion_times(trace: ExecutionTrace) -> List[int]:
    return [legacy_edge_completion_time(trace, u, v) for u, v in trace.network.edges]


def _legacy_worst_case_rounds(trace: ExecutionTrace) -> int:
    candidates = [0]
    candidates.extend(legacy_node_completion_times(trace))
    candidates.extend(legacy_edge_completion_times(trace))
    return max(candidates)


def _expected_node_times(traces: List[ExecutionTrace]) -> List[float]:
    n = traces[0].network.n
    sums = [0.0] * n
    for trace in traces:
        for v, t in enumerate(legacy_node_completion_times(trace)):
            sums[v] += t
    return [s / len(traces) for s in sums]


def _expected_edge_times(traces: List[ExecutionTrace]) -> List[float]:
    m = traces[0].network.m
    sums = [0.0] * m
    for trace in traces:
        for i, t in enumerate(legacy_edge_completion_times(trace)):
            sums[i] += t
    return [s / len(traces) for s in sums]


def legacy_measure(traces: List[ExecutionTrace]) -> ComplexityMeasurement:
    """The seed ``measure()``: every metric recomputes its vectors from scratch."""
    first = traces[0]
    expected_nodes_for_avg = _expected_node_times(traces)
    node_averaged = mean(expected_nodes_for_avg) if expected_nodes_for_avg else 0.0
    expected_edges_for_avg = _expected_edge_times(traces)
    edge_averaged = mean(expected_edges_for_avg) if expected_edges_for_avg else 0.0
    expected_nodes = _expected_node_times(traces)
    node_expected = max(expected_nodes) if expected_nodes else 0.0
    expected_edges = _expected_edge_times(traces)
    edge_expected = max(expected_edges) if expected_edges else 0.0
    worst_case = max(_legacy_worst_case_rounds(trace) for trace in traces)
    return ComplexityMeasurement(
        algorithm=first.algorithm_name,
        problem=first.problem.name,
        n=first.network.n,
        m=first.network.m,
        trials=len(traces),
        node_averaged=node_averaged,
        edge_averaged=edge_averaged,
        node_expected=node_expected,
        edge_expected=edge_expected,
        worst_case=worst_case,
    )
