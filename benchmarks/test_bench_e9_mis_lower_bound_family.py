"""E9 — Theorem 16 (empirical shape): MIS on the lower-bound family vs its relaxation.

Runs the MIS algorithms and the (2,2)-ruling set algorithm on lifted cluster
tree graphs (the family behind the Ω(min{log Δ / log log Δ, √(log n / log
log n)}) node-averaged lower bound).  The measurable shape at demo scale: on
these graphs the MIS algorithms pay a clearly higher node-averaged cost than
the (2,2)-ruling set relaxation, and the cost is concentrated on the huge
independent cluster S(c0) — exactly the population the lower-bound argument
shows cannot decide early.
"""

from __future__ import annotations

from statistics import mean

from repro.algorithms.mis import GhaffariMIS, LubyMIS
from repro.algorithms.ruling_set import RandomizedTwoTwoRulingSet
from repro.analysis import format_table, network_from
from repro.core import problems
from repro.core.experiment import run_trials
from repro.core.metrics import measure, node_averaged_complexity
from repro.local.runner import Runner
from repro.lowerbound.base_graph import build_base_graph
from repro.lowerbound.lift import lift_cluster_graph

from _bench_utils import emit

CASES = [
    ("G_1 (beta=4)", 1, 4, 1),
    ("G_1 lifted q=2", 1, 4, 2),
]


def run_e9():
    rows = []
    runner = Runner(max_rounds=50_000)
    for label, k, beta, lift_order in CASES:
        gk = build_base_graph(k, beta)
        if lift_order > 1:
            gk = lift_cluster_graph(gk, lift_order, seed=3)
        network = network_from(gk.graph, seed=7)
        s0 = set(gk.special_cluster(0))

        for name, factory, problem in (
            ("luby-mis", LubyMIS, problems.MIS),
            ("ghaffari-mis", GhaffariMIS, problems.MIS),
            ("(2,2)-ruling-set", RandomizedTwoTwoRulingSet, problems.ruling_set(2, 2)),
        ):
            traces = run_trials(factory, network, problem, trials=2, seed=11, runner=runner)
            measurement = measure(traces)
            s0_average = mean(
                mean(trace.node_completion_time(v) for v in s0) for trace in traces
            )
            rows.append(
                {
                    "instance": label,
                    "algorithm": name,
                    "n": network.n,
                    "node_averaged": round(measurement.node_averaged, 3),
                    "s0_node_averaged": round(s0_average, 3),
                    "worst_case": measurement.worst_case,
                }
            )
    return rows


def test_e9_mis_pays_more_than_ruling_set_on_lower_bound_family(run_experiment):
    rows = run_experiment(run_e9)
    emit(
        format_table(
            rows,
            columns=["instance", "algorithm", "n", "node_averaged", "s0_node_averaged", "worst_case"],
            title="E9: node-averaged complexity on the KMW-style family (Theorem 16)",
        )
    )
    by_instance = {}
    for row in rows:
        by_instance.setdefault(row["instance"], {})[row["algorithm"]] = row
    for instance, algorithms in by_instance.items():
        ruling = algorithms["(2,2)-ruling-set"]
        # Theorem 2: the relaxation stays cheap on the lower-bound family too.
        assert ruling["node_averaged"] <= 14.0
        for mis_name in ("luby-mis", "ghaffari-mis"):
            mis_row = algorithms[mis_name]
            # Theorem 16's mechanism: the node-averaged cost of MIS concentrates
            # on the dominant independent cluster S(c0), whose nodes cannot
            # decide before their small neighbouring clusters are resolved.
            assert mis_row["s0_node_averaged"] >= 0.8 * mis_row["node_averaged"]
