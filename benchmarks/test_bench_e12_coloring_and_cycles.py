"""E12 — Section 1.2: implicit averaged bounds and the cycle baseline.

Two measurements the introduction and related-work discussion rely on:

* randomized (Δ+1)-colouring and Luby's MIS have node-averaged complexity
  O(1) on bounded-degree graphs (each node decides with constant probability
  per phase);
* on cycles, deterministic algorithms cannot beat Ω(log* n) even on average
  (Feuilloley), while randomized ones decide most nodes in O(1) rounds — we
  report the deterministic local-minimum MIS next to Luby's MIS on growing
  cycles, where random identifiers keep the deterministic averaged cost above
  the randomized one.
"""

from __future__ import annotations

import networkx as nx

from repro.algorithms.coloring import RandomizedColoring
from repro.algorithms.mis import LocalMinimumMIS, LubyMIS
from repro.analysis import format_sweep, format_table, sweep
from repro.core import problems

from _bench_utils import emit

CYCLE_SIZES = [50, 200, 800]
DEGREES = [4, 8, 16]


def run_e12_bounded_degree():
    return sweep(
        parameter="delta",
        values=DEGREES,
        graph_factory=lambda d: nx.random_regular_graph(d, 300, seed=81),
        algorithms={
            "randomized-coloring": (
                lambda net: RandomizedColoring(),
                lambda net: problems.coloring(net.max_degree() + 1),
            ),
            "luby-mis": (lambda net: LubyMIS(), lambda net: problems.MIS),
        },
        trials=2,
        seed=12,
    )


def run_e12_cycles():
    return sweep(
        parameter="n",
        values=CYCLE_SIZES,
        graph_factory=lambda n: nx.cycle_graph(n),
        algorithms={
            "luby-mis": (lambda net: LubyMIS(), lambda net: problems.MIS),
            "local-minimum-mis": (lambda net: LocalMinimumMIS(), lambda net: problems.MIS),
        },
        trials=2,
        seed=13,
    )


def test_e12_coloring_constant_average(run_experiment):
    points = run_experiment(run_e12_bounded_degree)
    emit(format_sweep(points, title="E12a: randomized colouring / Luby MIS vs Δ (Section 1.2)"))
    coloring_averages = [
        p.measurement.node_averaged for p in points if p.measurement.algorithm == "randomized-coloring"
    ]
    # O(1) node-averaged: flat in Δ.
    assert max(coloring_averages) <= 8.0
    assert max(coloring_averages) <= 2.0 * min(coloring_averages) + 2.0


def test_e12_cycles_randomized_vs_deterministic(run_experiment):
    points = run_experiment(run_e12_cycles)
    emit(format_sweep(points, title="E12b: MIS on cycles, randomized vs deterministic"))
    luby = [p.measurement.node_averaged for p in points if p.measurement.algorithm == "luby-mis"]
    deterministic = [
        p.measurement.node_averaged for p in points if p.measurement.algorithm == "local-minimum-mis"
    ]
    # Randomized node-averaged complexity on cycles is O(1) and flat in n.
    assert max(luby) <= 8.0
    # The deterministic averaged cost does not drop below the randomized one
    # (Feuilloley's bound says it in fact grows like log* n on worst-case IDs).
    assert all(d >= l * 0.5 for d, l in zip(deterministic, luby))
