"""Measure ``sweep(parallel=...)`` scaling and record it in BENCH_core.json.

The parallel sweep path fans cells over a fork-based process pool with the
deterministic ``trial_seed`` schedule.  Since PR 8 the pool workers no
longer rebuild their per-value networks: the parent builds each network
once, exports its immutable CSR arrays (``indptr`` / ``indices`` / edge
endpoints / identifiers) into one ``multiprocessing.shared_memory`` segment
per value, and workers reattach them zero-copy.  Multi-trial cells on the
array engines additionally run **trial-batched** — one
``(value, algorithm)`` group steps all its trials together through
``ArrayEngine.run_batch``.  This script times the same sweep serially and
with increasing worker counts, asserts that every configuration produces
**identical measurements** (parallelism and batching must never change
results), and merges the outcome into ``BENCH_core.json`` under the
``parallel_sweep`` key (schema ``bench-core/v7``, see
``benchmarks/README.md``).

Usage::

    PYTHONPATH=src python benchmarks/sweep_scaling.py                 # default sizes
    PYTHONPATH=src python benchmarks/sweep_scaling.py --workers 1 2 4 8
    PYTHONPATH=src python benchmarks/sweep_scaling.py --out /tmp/bench.json

Run it on a multi-core box to fill in real scaling numbers; on a single-CPU
host it documents the pool overhead instead (the committed numbers state the
host CPU count).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time
from typing import Dict, List, Optional

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.algorithms.mis.luby import LubyMIS
from repro.analysis.sweep import sweep
from repro.core import schemas
from repro.core import problems
from repro.graphs import generators as gen

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_core.json"


def _run_sweep(values: List[int], trials: int, parallel) -> tuple:
    t0 = time.perf_counter()
    points = sweep(
        parameter="n",
        values=values,
        graph_factory=lambda n: gen.random_regular_edges(4, n, seed=1),
        algorithms={"luby-mis": (lambda net: LubyMIS(), lambda net: problems.MIS)},
        trials=trials,
        seed=0,
        parallel=parallel,
    )
    elapsed = time.perf_counter() - t0
    return elapsed, [p.as_row() for p in points]


def measure_scaling(
    values: List[int], trials: int, workers: List[int], reps: int
) -> Dict[str, object]:
    """Serial-vs-parallel wall times for one sweep; asserts identical rows."""
    serial_s = None
    serial_rows = None
    for _ in range(reps):
        elapsed, rows = _run_sweep(values, trials, parallel=None)
        if serial_s is None or elapsed < serial_s:
            serial_s = elapsed
        serial_rows = rows

    runs = []
    for count in workers:
        best: Optional[float] = None
        for _ in range(reps):
            elapsed, rows = _run_sweep(values, trials, parallel=count)
            assert rows == serial_rows, (
                f"parallel={count} produced different measurements than serial"
            )
            if best is None or elapsed < best:
                best = elapsed
        runs.append(
            {
                "workers": count,
                "wall_s": round(best, 6),
                "speedup_vs_serial": round(serial_s / best, 3),
                "identical_measurements": True,
            }
        )
        print(
            f"workers={count}: {best * 1000:8.1f} ms  "
            f"(serial {serial_s * 1000:8.1f} ms, ×{serial_s / best:.2f})",
            flush=True,
        )

    cells = len(values) * trials
    return {
        "workload": "luby-mis × random-4-regular (direct edge lists)",
        "values": values,
        "trials": trials,
        "cells": cells,
        "reps": reps,
        "host_cpus": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "serial_wall_s": round(serial_s, 6),
        "shared_memory_csr": True,
        "batched_groups": True,
        "runs": runs,
        "notes": (
            "sweep(parallel=k) forks k pool workers over the deterministic "
            "cell schedule; the parent exports each value's CSR arrays into "
            "a shared-memory segment that workers attach zero-copy, and "
            "multi-trial array cells run trial-batched as one "
            "(value, algorithm) group through ArrayEngine.run_batch. Rows "
            "are asserted identical to the serial sweep before timing is "
            "recorded. Speedups above 1 require host_cpus > 1 — on a "
            "single-CPU host this records the pool's fork/IPC overhead "
            "instead (the committed numbers state the host CPU count)."
        ),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--values", type=int, nargs="+", default=[2000, 4000])
    parser.add_argument("--trials", type=int, default=4)
    parser.add_argument("--workers", type=int, nargs="+", default=None)
    parser.add_argument("--reps", type=int, default=3)
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    workers = args.workers
    if workers is None:
        cpus = os.cpu_count() or 1
        workers = sorted({2, cpus} - {1}) or [2]

    section = measure_scaling(args.values, args.trials, workers, args.reps)

    if args.out.exists():
        document = json.loads(args.out.read_text())
    else:
        document = {"schema": schemas.BENCH_CORE, "cells": []}
    document["parallel_sweep"] = section
    args.out.write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote parallel_sweep section to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
