"""E8 — Theorem 11 / Lemma 12: view indistinguishability and lift statistics.

Two parts:

* lift statistics (Lemma 12): the fraction of nodes lying on a short cycle
  shrinks as the lift order q grows;
* indistinguishability (Theorem 11 / Figure 2): for tree-like pairs
  ``(v0 ∈ S(c0), v1 ∈ S(c1))`` Algorithm 1 produces a view isomorphism —
  checked on lifted graphs at k = 1 and on tree unfoldings at k = 2 (where
  laptop-scale lifts cannot reach the required girth; see EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.graphs.girth import nodes_with_tree_like_view
from repro.lowerbound.base_graph import build_base_graph
from repro.lowerbound.isomorphism import find_isomorphism, verify_view_isomorphism
from repro.lowerbound.lift import lift_cluster_graph
from repro.lowerbound.unfold import tree_view_instance

from _bench_utils import emit

LIFT_ORDERS = [1, 2, 4]
PAIRS_PER_CASE = 6


def run_e8():
    rows = []

    # Part 1: lift statistics + Theorem 11 at k = 1.
    base = build_base_graph(1, 4)
    for order in LIFT_ORDERS:
        lifted = lift_cluster_graph(base, order=order, seed=order) if order > 1 else base
        s0 = lifted.special_cluster(0)
        s1 = lifted.special_cluster(1)
        # Lemma 12 statistic: tree-likeness at radius 2 of the special
        # clusters (the whole graph would be expensive and less relevant).
        special = (s0 + s1)[:200]
        special_subgraph = lifted.graph
        from repro.graphs.girth import has_cycle_within_distance

        tree_like_count = sum(
            1 for v in special if not has_cycle_within_distance(special_subgraph, v, 2)
        )
        verified = 0
        attempted = 0
        for v0 in s0[:PAIRS_PER_CASE]:
            for v1 in s1[:PAIRS_PER_CASE]:
                attempted += 1
                phi = find_isomorphism(lifted, v0, v1)
                verified += verify_view_isomorphism(lifted, phi, v0, v1)
        rows.append(
            {
                "instance": f"k=1 lift q={order}",
                "n": lifted.n,
                "tree_like_radius2": round(tree_like_count / len(special), 3),
                "pairs_checked": attempted,
                "isomorphic_pairs": verified,
            }
        )

    # Part 2: Theorem 11 at k = 2 via tree unfoldings.
    gk2 = build_base_graph(2, 4)
    instance, root0, root1 = tree_view_instance(
        gk2, gk2.special_cluster(0)[0], gk2.special_cluster(1)[0]
    )
    phi = find_isomorphism(instance, root0, root1)
    rows.append(
        {
            "instance": "k=2 unfolded views",
            "n": instance.graph.number_of_nodes(),
            "tree_like_radius2": 1.0,
            "pairs_checked": 1,
            "isomorphic_pairs": int(verify_view_isomorphism(instance, phi, root0, root1)),
        }
    )
    return rows


def test_e8_views_are_indistinguishable(run_experiment):
    rows = run_experiment(run_e8)
    emit(
        format_table(
            rows,
            columns=["instance", "n", "tree_like_radius2", "pairs_checked", "isomorphic_pairs"],
            title="E8: Theorem 11 view indistinguishability + Lemma 12 lift statistics",
        )
    )
    # Every checked pair is isomorphic (Theorem 11).
    for row in rows:
        assert row["isomorphic_pairs"] == row["pairs_checked"]
    # Lemma 12: larger lifts are (weakly) more tree-like at radius 2.
    lift_rows = [r for r in rows if r["instance"].startswith("k=1")]
    fractions = [r["tree_like_radius2"] for r in lift_rows]
    assert fractions[-1] >= fractions[0]
