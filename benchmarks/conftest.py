"""Shared helpers for the benchmark harness.

Every benchmark regenerates one experiment of EXPERIMENTS.md (one theorem,
figure, or construction of the paper), prints the measured rows as a table,
and asserts the qualitative *shape* the paper predicts (who wins, what stays
flat, what grows).  The pytest-benchmark fixture times a single run of each
experiment (``pedantic`` with one round) so ``--benchmark-only`` produces a
timing table without multiplying the workload.
"""

from __future__ import annotations

import pathlib
import sys

import pytest

SRC = pathlib.Path(__file__).parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))


@pytest.fixture
def run_experiment(benchmark):
    """Run an experiment callable exactly once under pytest-benchmark timing."""

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run


def emit(text: str) -> None:
    """Print a benchmark table (shown with pytest -s; always kept in captured output)."""
    print()
    print(text)
