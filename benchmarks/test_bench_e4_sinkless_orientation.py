"""E4 — Theorem 6: sinkless orientation, node-averaged vs worst case.

Theorem 6: deterministic sinkless orientation with node-averaged complexity
O(log* n) and worst-case O(log n); the randomized algorithm (Section 3.3) has
node-averaged complexity O(1).  The sweep grows ``n`` on 3-regular graphs and
reports both algorithms.  Expected shape: both node-averaged columns stay
essentially flat while the worst case is larger and tends to grow with ``n``
(the deterministic algorithm's gap between average and worst case is the
qualitative content of the theorem; see EXPERIMENTS.md for the substitution
discussion).
"""

from __future__ import annotations

import networkx as nx

from repro.algorithms.orientation import (
    DeterministicSinklessOrientation,
    RandomizedSinklessOrientation,
)
from repro.analysis import format_sweep, sweep
from repro.core import problems

from _bench_utils import emit

SIZES = [60, 120, 240, 480]


def run_e4():
    return sweep(
        parameter="n",
        values=SIZES,
        graph_factory=lambda n: nx.random_regular_graph(3, n, seed=41),
        algorithms={
            "randomized-orientation": (
                lambda net: RandomizedSinklessOrientation(),
                lambda net: problems.SINKLESS_ORIENTATION,
            ),
            "deterministic-orientation": (
                lambda net: DeterministicSinklessOrientation(),
                lambda net: problems.SINKLESS_ORIENTATION,
            ),
        },
        trials=3,
        seed=4,
    )


def test_e4_node_average_flat_worst_case_larger(run_experiment):
    points = run_experiment(run_e4)
    emit(format_sweep(points, title="E4: sinkless orientation vs n (Theorem 6)"))

    by_algorithm = {}
    for point in points:
        by_algorithm.setdefault(point.measurement.algorithm, []).append(point.measurement)

    randomized = by_algorithm["randomized-orientation"]
    deterministic = by_algorithm["deterministic-orientation"]

    # Randomized node-averaged complexity is O(1): flat across an 8x growth in n.
    random_averages = [m.node_averaged for m in randomized]
    assert max(random_averages) <= 12.0
    assert max(random_averages) <= 1.8 * min(random_averages) + 2.0

    # Deterministic: the node average stays well below the worst case.
    for m in deterministic:
        assert m.node_averaged <= m.worst_case
    det_averages = [m.node_averaged for m in deterministic]
    assert max(det_averages) <= 2.0 * min(det_averages) + 6.0
